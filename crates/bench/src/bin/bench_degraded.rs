//! Degraded-mode serving benchmark: read throughput over TCP while the
//! storage is healthy vs degraded (read-only), the cost of a typed
//! `Degraded` rejection, and recovery-probe latency as a function of WAL
//! length, written to `BENCH_degraded.json`.
//!
//! The number that matters: flipping to read-only degraded mode must not
//! tax the read path — searches and registry reads serve at the same
//! rate whether the disk is full or not, and a rejected mutation costs a
//! dispatch-time gate check rather than a failed syscall.
//!
//! Run with `cargo run --release -p laminar-bench --bin bench_degraded`.
//! Pass a PE count to override the default (`bench_degraded 200`).

use laminar_execengine::ExecutionEngine;
use laminar_registry::{
    FaultHook, FaultKind, FaultSpec, IoFaultInjector, NewPe, PersistOptions, Registry, SyncPolicy,
};
use laminar_server::{
    Connection, ConnectionError, LaminarServer, NetClientTransport, NetServer, PeSubmission,
    Request, Response, ServerConfig,
};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Timed repetitions per cell; the median is reported.
const REPS: usize = 3;

#[derive(Serialize)]
struct ReadResult {
    state: &'static str,
    reads: u64,
    elapsed_ms: f64,
    reads_per_s: f64,
}

#[derive(Serialize)]
struct RejectionResult {
    attempts: u64,
    elapsed_ms: f64,
    rejections_per_s: f64,
}

#[derive(Serialize)]
struct ProbeResult {
    wal_records: u64,
    outcome: &'static str,
    probe_ms: f64,
}

#[derive(Serialize)]
struct Report {
    pes: u64,
    reads: Vec<ReadResult>,
    rejection: RejectionResult,
    probes: Vec<ProbeResult>,
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "laminar-bench-degraded-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pe(user_id: u64, i: u64) -> NewPe {
    NewPe {
        user_id,
        name: format!("BenchPe{i}"),
        description: "counts the words of the stream".into(),
        code: "class BenchPe(IterativePE):\n    def _process(self, d):\n        return d".into(),
        description_embedding: "0.12,0.34,0.56".into(),
        spt_embedding: "0.78,0.90".into(),
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Time `reads` GetRegistry round-trips over TCP; returns elapsed ms.
fn read_loop(client: &NetClientTransport, token: u64, reads: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..reads {
        match client.call(Request::GetRegistry { token }).expect("read").value() {
            Response::Registry { .. } => {}
            other => panic!("{other:?}"),
        }
    }
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let reads: u64 = 300;

    // A durable registry with a persistent-ENOSPC injector installed but
    // disarmed: the disk is healthy until `arm()` fills it.
    let dir = bench_dir("srv");
    let inj = IoFaultInjector::new(42, FaultSpec::persistent(FaultKind::Enospc));
    inj.clear();
    let hook: FaultHook = inj.clone();
    let registry = Registry::open_with_faults(
        &dir,
        PersistOptions {
            snapshot_every: 0,
            sync: SyncPolicy::OsBuffered,
        },
        hook,
    )
    .expect("open bench registry");
    let user = registry.register_user("bench", "pw").expect("register user");
    for i in 0..n {
        registry.add_pe(pe(user, i)).expect("unique names never collide");
    }
    let wal_records = registry
        .persist_stats()
        .expect("durable registry has stats")
        .wal_records;

    let server = Arc::new(LaminarServer::new(
        registry,
        ExecutionEngine::with_stock(),
        ServerConfig::default(),
    ));
    let net = NetServer::bind("127.0.0.1:0", server.clone()).expect("bind");
    let client = NetClientTransport::new(net.addr());
    let token = match client
        .call(Request::Login {
            username: "bench".into(),
            password: "pw".into(),
        })
        .expect("login")
        .value()
    {
        Response::Token(t) => t,
        other => panic!("{other:?}"),
    };

    let mut report = Report {
        pes: n,
        reads: Vec::new(),
        rejection: RejectionResult {
            attempts: 0,
            elapsed_ms: 0.0,
            rejections_per_s: 0.0,
        },
        probes: Vec::new(),
    };

    println!("# degraded-mode serving — {n} PEs, {reads} reads per state\n");
    println!("{:<10} {:>12} {:>12}", "state", "elapsed ms", "reads/s");

    // Healthy read throughput.
    let healthy_ms = median((0..REPS).map(|_| read_loop(&client, token, reads)).collect());
    let healthy_qps = reads as f64 / (healthy_ms / 1e3).max(1e-9);
    println!("{:<10} {:>12.1} {:>12.0}", "healthy", healthy_ms, healthy_qps);
    report.reads.push(ReadResult {
        state: "healthy",
        reads,
        elapsed_ms: healthy_ms,
        reads_per_s: healthy_qps,
    });

    // The disk fills: one mutation fails and the server flips degraded.
    inj.arm();
    match client
        .call(Request::RegisterPe {
            token,
            pe: PeSubmission {
                name: "HitsFullDisk".into(),
                code: "class HitsFullDisk(IterativePE):\n    def _process(self, d):\n        return d".into(),
                description: None,
            },
        })
        .expect("the failed mutation still gets a typed reply")
        .value()
    {
        Response::Error(_) => {}
        other => panic!("{other:?}"),
    }
    assert!(server.health().is_degraded(), "server must be degraded now");

    // Degraded read throughput — the headline comparison.
    let degraded_ms = median((0..REPS).map(|_| read_loop(&client, token, reads)).collect());
    let degraded_qps = reads as f64 / (degraded_ms / 1e3).max(1e-9);
    println!("{:<10} {:>12.1} {:>12.0}", "degraded", degraded_ms, degraded_qps);
    report.reads.push(ReadResult {
        state: "degraded",
        reads,
        elapsed_ms: degraded_ms,
        reads_per_s: degraded_qps,
    });

    // Cost of a typed Degraded rejection (gate check + round-trip; no
    // embedding work, no syscall against the broken disk).
    let attempts: u64 = 200;
    let start = Instant::now();
    for i in 0..attempts {
        match client.call(Request::RegisterPe {
            token,
            pe: PeSubmission {
                name: format!("Rejected{i}"),
                code: "class R(IterativePE): pass".into(),
                description: None,
            },
        }) {
            Err(ConnectionError::Degraded { .. }) => {}
            other => panic!("expected Degraded: {other:?}"),
        }
    }
    let rej_ms = start.elapsed().as_secs_f64() * 1e3;
    let rej_per_s = attempts as f64 / (rej_ms / 1e3).max(1e-9);
    println!("\n# typed rejections while degraded\n");
    println!(
        "{:>10} {:>12.1} {:>14.0}",
        attempts, rej_ms, rej_per_s
    );
    report.rejection = RejectionResult {
        attempts,
        elapsed_ms: rej_ms,
        rejections_per_s: rej_per_s,
    };

    // Probe latency: failing (fault still armed), then recovering (fault
    // cleared; the probe replays the WAL as a CRC audit, so its cost
    // scales with log length).
    println!("\n# recovery probe\n");
    println!("{:>12} {:>10} {:>10}", "wal records", "outcome", "probe ms");
    let start = Instant::now();
    let still_degraded = server.probe_storage();
    let fail_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(still_degraded, "probe must fail while the disk is full");
    println!("{:>12} {:>10} {:>10.2}", wal_records, "fail", fail_ms);
    report.probes.push(ProbeResult {
        wal_records,
        outcome: "fail",
        probe_ms: fail_ms,
    });

    inj.clear();
    let start = Instant::now();
    let degraded_after = server.probe_storage();
    let ok_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(!degraded_after, "probe must recover once the fault clears");
    println!("{:>12} {:>10} {:>10.2}", wal_records, "recover", ok_ms);
    report.probes.push(ProbeResult {
        wal_records,
        outcome: "recover",
        probe_ms: ok_ms,
    });

    // Recovered: mutations land again.
    match client
        .call(Request::RegisterPe {
            token,
            pe: PeSubmission {
                name: "AfterRecovery".into(),
                code: "class AfterRecovery(IterativePE):\n    def _process(self, d):\n        return d".into(),
                description: None,
            },
        })
        .expect("mutation after recovery")
        .value()
    {
        Response::Registered { .. } => {}
        other => panic!("{other:?}"),
    }

    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_degraded.json", &json).expect("write BENCH_degraded.json");
    eprintln!("wrote BENCH_degraded.json");
    let _ = std::fs::remove_dir_all(&dir);
}
