//! E6 — regenerate **Table II / Fig. 6**: the registry's database schema,
//! with a live integrity demonstration.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin table2_schema
//! ```

use laminar_registry::{schema_ddl, table_descriptions, NewPe, NewWorkflow, Registry};

fn main() {
    println!("# Table II — key elements of the updated database schema\n");
    println!("{:<20} Description", "Table Name");
    for t in table_descriptions() {
        println!("{:<20} {}", t.name, t.description);
    }

    println!("\n# Fig. 6 — updated schema (DDL form)\n");
    println!("{}", schema_ddl());

    // Live integrity demonstration.
    println!("# Live integrity checks\n");
    let reg = Registry::new();
    let user = reg.register_user("demo", "pw").expect("register");
    let pe = reg
        .add_pe(NewPe {
            user_id: user,
            name: "IsPrime".into(),
            description: "checks primality".into(),
            code: "class IsPrime: pass".into(),
            description_embedding: "[]".into(),
            spt_embedding: "[]".into(),
        })
        .expect("pe insert");
    let wf = reg
        .add_workflow(NewWorkflow {
            user_id: user,
            name: "isprime_wf".into(),
            description: String::new(),
            code: String::new(),
            description_embedding: String::new(),
            spt_embedding: String::new(),
            pe_ids: vec![pe],
        })
        .expect("wf insert");
    println!("insert User/PE/Workflow               : ok (ids {user}, {pe}, {wf})");
    println!(
        "UNIQUE(User.username)                 : {}",
        reg.register_user("demo", "x").is_err()
    );
    println!(
        "FK  Workflow→PE (delete referenced PE): rejected = {}",
        reg.remove_pe(pe).is_err()
    );
    println!(
        "FK  Execution→Workflow (bad id)       : rejected = {}",
        reg.add_execution(9999, user, "simple", "1").is_err()
    );
    let ex = reg.add_execution(wf, user, "multi", "10").expect("execution");
    let resp = reg
        .add_response(ex, "the num 751 is prime", laminar_registry::ExecutionStatus::Completed)
        .expect("response");
    println!("Execution + Response rows             : ok (ids {ex}, {resp})");
    println!(
        "index idx_pe_name lookup              : {}",
        reg.get_pe_by_name("isprime").is_ok()
    );
}
