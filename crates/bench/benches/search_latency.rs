//! Criterion bench (E11): search latency vs registry size — semantic
//! (UniXcoder cosine), structural (Aroma SPT overlap), and the llm
//! (ReACC) code path, at 10², 10³, 10⁴ and 10⁵ indexed PEs.
//!
//! Supports the abstract's "significant performance improvements" claim
//! with concrete per-query costs at realistic registry scales. All paths
//! exercise the bounded top-k engine (k = 5, the server default); the
//! `laminar-bench` binary `bench_search` additionally compares against
//! the old full-sort baseline and writes `BENCH_search.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use embed::{Embedder, ReaccSim, UniXcoderSim};
use laminar_bench::search_corpus;
use laminar_server::indexes::{EntryKind, SearchIndexes};
use spt::Spt;

/// The server's default per-query result bound.
const K: usize = 5;

fn build_indexes(n: usize) -> SearchIndexes {
    let corpus = search_corpus(n);
    let ix = SearchIndexes::new();
    let emb = UniXcoderSim::new();
    for e in corpus.entries.iter().take(n) {
        ix.upsert(
            e.id,
            EntryKind::Pe,
            emb.embed(&e.description),
            Spt::parse_source(&e.code).feature_vec(),
            &e.code,
        );
    }
    ix
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("search_latency");
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let ix = build_indexes(n);
        let emb = UniXcoderSim::new();
        let reacc = ReaccSim::new();
        let qtext = emb.embed("detect anomalies in sensor readings");
        let qspt = Spt::parse_source("for item in data:\n    total += item\n").feature_vec();
        let qcode = reacc.embed_code("for item in data:\n    total += item\n");

        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("semantic", n), &n, |b, _| {
            b.iter(|| ix.rank_semantic(black_box(&qtext), Some(EntryKind::Pe), K))
        });
        g.bench_with_input(BenchmarkId::new("spt_overlap", n), &n, |b, _| {
            b.iter(|| ix.rank_spt(black_box(&qspt), Some(EntryKind::Pe), K))
        });
        g.bench_with_input(BenchmarkId::new("reacc_llm", n), &n, |b, _| {
            b.iter(|| ix.rank_reacc(black_box(&qcode), Some(EntryKind::Pe), K))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search
}
criterion_main!(benches);
