//! Criterion bench: the parsing/featurisation substrate — pyparse
//! lexing+parsing, SPT construction, Aroma featurisation, and the model
//! substitutes. These are the per-registration costs of §VI's pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

const ISPRIME: &str = "\
class IsPrime(IterativePE):
    \"\"\"Checks whether a given number is prime and returns the number if it is.\"\"\"
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, num):
        if all(num % i != 0 for i in range(2, num)):
            return num
";

fn bench_parsing(c: &mut Criterion) {
    // A larger module: 40 concatenated PE classes.
    let corpus = csn::Dataset::generate(csn::DatasetConfig {
        families: 8,
        variants_per_family: 5,
        seed: 1,
        ..csn::DatasetConfig::default()
    });
    let big: String = corpus
        .entries
        .iter()
        .map(|e| e.code.clone())
        .collect::<Vec<_>>()
        .join("\n");

    let mut g = c.benchmark_group("parsing");
    g.throughput(Throughput::Bytes(ISPRIME.len() as u64));
    g.bench_function("pyparse/isprime_class", |b| {
        b.iter(|| pyparse::parse(black_box(ISPRIME)))
    });
    g.throughput(Throughput::Bytes(big.len() as u64));
    g.bench_function("pyparse/40_pe_module", |b| {
        b.iter(|| pyparse::parse(black_box(&big)))
    });
    g.finish();

    let mut g = c.benchmark_group("featurise");
    g.bench_function("spt/isprime_feature_vec", |b| {
        b.iter(|| spt::Spt::parse_source(black_box(ISPRIME)).feature_vec())
    });
    g.bench_function("codet5/describe_full_class", |b| {
        let gen = embed::CodeT5Sim::default();
        b.iter(|| gen.describe_pe(black_box(ISPRIME)))
    });
    g.bench_function("unixcoder/embed_query", |b| {
        let m = embed::UniXcoderSim::new();
        b.iter(|| m.embed_text(black_box("a pe that is able to detect anomalies")))
    });
    g.bench_function("reacc/embed_code", |b| {
        let m = embed::ReaccSim::new();
        b.iter(|| m.embed_code(black_box(ISPRIME)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parsing
}
criterion_main!(benches);
