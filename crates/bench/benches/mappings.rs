//! Criterion bench (E10): end-to-end enactment cost of the three mappings
//! on a latency-bound 32-item pipeline (0.5 ms per item).

use criterion::{criterion_group, criterion_main, Criterion};
use d4py::mapping::{run, DynamicConfig, Mapping, RunInput};
use d4py::workflows::latency_bound_graph;
use std::time::Duration;

const ITEMS: u64 = 32;
const DELAY_US: u64 = 500;

fn bench_mappings(c: &mut Criterion) {
    let mut g = c.benchmark_group("mappings_32x0.5ms");
    g.bench_function("simple", |b| {
        b.iter(|| {
            run(
                &latency_bound_graph(DELAY_US, false),
                RunInput::Iterations(ITEMS),
                &Mapping::Simple,
            )
            .unwrap()
        })
    });
    g.bench_function("multi_6", |b| {
        b.iter(|| {
            run(
                &latency_bound_graph(DELAY_US, false),
                RunInput::Iterations(ITEMS),
                &Mapping::Multi { processes: 6 },
            )
            .unwrap()
        })
    });
    g.bench_function("dynamic_6", |b| {
        b.iter(|| {
            run(
                &latency_bound_graph(DELAY_US, false),
                RunInput::Iterations(ITEMS),
                &Mapping::Dynamic(DynamicConfig {
                    initial_workers: 6,
                    max_workers: 6,
                    autoscale: false,
                    scale_threshold: 4,
                }),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(6));
    targets = bench_mappings
}
criterion_main!(benches);
