//! Criterion bench (E9): resource handling — cached reference check + hit
//! (Laminar 2.0) vs full inline retransmission (Laminar 1.0) of a 256 KiB
//! resource set.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use laminar_server::protocol::content_hash;
use laminar_server::{ResourceCache, ResourceRef};

const SIZE: usize = 256 * 1024;

fn bench_resources(c: &mut Criterion) {
    let bytes = vec![7u8; SIZE];
    let reference = ResourceRef {
        name: "input.bin".to_string(),
        content_hash: content_hash(&bytes),
    };

    let mut g = c.benchmark_group("resources_256KiB");
    g.throughput(Throughput::Bytes(SIZE as u64));

    // Laminar 1.0 path: the server receives the full payload every run.
    g.bench_function("v1_inline_retransmit", |b| {
        let cache = ResourceCache::new();
        b.iter(|| {
            cache.receive_inline(black_box(&[("input.bin".to_string(), bytes.clone())]));
        })
    });

    // Laminar 2.0 path: warm cache, only the reference travels.
    g.bench_function("v2_cached_reference_check", |b| {
        let cache = ResourceCache::new();
        cache.store("input.bin", bytes.clone());
        b.iter(|| {
            let missing = cache.missing(black_box(std::slice::from_ref(&reference)));
            assert!(missing.is_empty());
        })
    });

    // Upload path (first run only).
    g.bench_function("v2_first_upload", |b| {
        b.iter(|| {
            let cache = ResourceCache::new();
            cache.store("input.bin", black_box(bytes.clone()));
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_resources
}
criterion_main!(benches);
