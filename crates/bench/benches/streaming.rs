//! Criterion bench (E8): time-to-first-output, batch (HTTP/1.1-style,
//! Laminar 1.0) vs streaming (HTTP/2-style, Laminar 2.0) delivery of a
//! 20-item run whose items cost ~1 ms each.

use criterion::{criterion_group, criterion_main, Criterion};
use laminar_core::{Laminar, LaminarConfig};
use laminar_server::protocol::{FaultPolicyWire, Ident, RunInputWire, RunMode, WireFrame};
use laminar_server::{DeliveryMode, LaminarServer, Reply, Request, Response, Transport};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn setup() -> (Arc<LaminarServer>, u64) {
    let laminar = Laminar::deploy(LaminarConfig {
        prewarmed: 4,
        cold_start: Duration::from_millis(1),
        ..LaminarConfig::default()
    });
    let server = laminar.server();
    server.engine().library().register("slow_wf", || {
        use d4py::prelude::*;
        let mut g = WorkflowGraph::new("slow_wf");
        let src = g.add(ProducerPE::new("Src", |i| Some(Data::from(i as i64))));
        let slow = g.add(IterativePE::new("Slow", |d: Data| {
            std::thread::sleep(Duration::from_millis(1));
            Some(d)
        }));
        let sink = g.add(ConsumerPE::new("Out", |d: Data, ctx: &mut Context<'_>| {
            ctx.log(format!("{d}"));
        }));
        g.connect(src, OUTPUT, slow, INPUT).unwrap();
        g.connect(slow, OUTPUT, sink, INPUT).unwrap();
        g
    });
    let token = match server
        .handle(Request::RegisterUser {
            username: "bench".into(),
            password: "pw".into(),
        })
        .value()
    {
        Response::Token(t) => t,
        other => panic!("{other:?}"),
    };
    server
        .handle(Request::RegisterWorkflow {
            token,
            name: "slow_wf".into(),
            code: String::new(),
            description: Some("slow".into()),
            pes: vec![],
        })
        .value();
    (server, token)
}

fn ttfo(server: &Arc<LaminarServer>, token: u64, mode: DeliveryMode, streaming: bool) -> Duration {
    let tp = Transport::new(server.clone(), mode);
    let reply = tp.send(Request::Run {
        token,
        ident: Ident::Name("slow_wf".into()),
        input: RunInputWire::Iterations(20),
        mode: RunMode::Sequential,
        streaming,
        verbose: false,
        resources: vec![],
        fault: FaultPolicyWire::default(),
        task_timeout_ms: None,
    });
    let t0 = Instant::now();
    if let Reply::Stream(rx) = reply {
        for f in rx.iter() {
            match f {
                WireFrame::Line(_) => {
                    let d = t0.elapsed();
                    // Drain to completion so the engine is quiescent.
                    for g in rx.iter() {
                        if matches!(g, WireFrame::End { .. }) {
                            break;
                        }
                    }
                    return d;
                }
                WireFrame::End { .. } => break,
                _ => {}
            }
        }
    }
    t0.elapsed()
}

fn bench_streaming(c: &mut Criterion) {
    let (server, token) = setup();
    let mut g = c.benchmark_group("ttfo_20x1ms_run");
    // iter_custom: the measured quantity is the returned TTFO, not the
    // closure's wall time (which includes draining the rest of the run).
    g.bench_function("batch_http1_style", |b| {
        b.iter_custom(|iters| {
            (0..iters)
                .map(|_| ttfo(&server, token, DeliveryMode::Batch, false))
                .sum()
        })
    });
    g.bench_function("streaming_http2_style", |b| {
        b.iter_custom(|iters| {
            (0..iters)
                .map(|_| ttfo(&server, token, DeliveryMode::Streaming, true))
                .sum()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(8));
    targets = bench_streaming
}
criterion_main!(benches);
