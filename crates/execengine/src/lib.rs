//! `laminar-execengine` — the serverless execution engine (paper §III,
//! §IV-E/F).
//!
//! In Laminar 2.0 the execution engine runs registered dispel4py workflows
//! serverlessly: Dockerised containers are provisioned on demand, Python
//! dependencies are auto-imported, the workflow's stdout is captured into a
//! concurrent queue and streamed line-by-line back to the server (HTTP/2
//! streaming). This crate reproduces each piece:
//!
//! * [`containers`] — a simulated container pool with a cold-start latency
//!   model, warm-pool reuse and auto-provisioning;
//! * [`imports`] — auto-import dependency resolution: scan the workflow's
//!   Python source for `import`s, resolve them against a simulated package
//!   index, "install" (cache) what is missing;
//! * [`library`] — the runnable-workflow library: the paper ships Python
//!   code to a Python interpreter; the Rust reproduction instead maps a
//!   registered workflow name to a native graph builder (substitution
//!   documented in DESIGN.md);
//! * [`engine`] — ties it together: acquire container → resolve imports →
//!   enact on d4py → stream captured output as [`engine::Frame`]s.

pub mod containers;
pub mod engine;
pub mod imports;
pub mod library;

pub use containers::{ContainerPool, PoolConfig, PoolStats};
pub use engine::{EngineError, ExecRequest, ExecutionEngine, ExecutionReport, Frame, ResponseMode};
pub use imports::{resolve_imports, ImportResolution, PackageIndex};
pub use library::WorkflowLibrary;
