//! Auto-import dependency management (paper §III: "supports auto-import
//! mechanisms for dependency management").
//!
//! The engine scans the registered workflow's Python source for `import` /
//! `from … import` statements, classifies each root module against a
//! simulated package index (standard library, already-installed cache, or
//! known-on-PyPI), and "installs" anything missing by adding it to the
//! cache — so the second execution of the same workflow resolves instantly,
//! exactly the behaviour the paper's engine exhibits.

use parking_lot::RwLock;
use pyparse::{SyntaxKind, TokKind};
use std::collections::BTreeSet;

/// Python standard-library roots the simulated index treats as built-in.
const STDLIB: &[&str] = &[
    "abc", "argparse", "asyncio", "base64", "collections", "csv", "dataclasses", "datetime",
    "functools", "glob", "hashlib", "heapq", "io", "itertools", "json", "logging", "math",
    "multiprocessing", "os", "pathlib", "pickle", "queue", "random", "re", "shutil", "socket",
    "string", "struct", "subprocess", "sys", "tempfile", "threading", "time", "typing", "urllib",
    "uuid",
];

/// Packages the simulated PyPI knows about (installable).
const KNOWN_PYPI: &[&str] = &[
    "dispel4py", "flask", "numpy", "pandas", "redis", "requests", "scipy", "sklearn", "torch",
];

/// How one imported root module was resolved.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ImportResolution {
    /// Python standard library — nothing to do.
    Stdlib(String),
    /// Already in the engine's package cache.
    Cached(String),
    /// Freshly installed into the cache (simulated `pip install`).
    Installed(String),
    /// Unknown to the index — the workflow would fail on this import.
    Unresolved(String),
}

impl ImportResolution {
    pub fn module(&self) -> &str {
        match self {
            ImportResolution::Stdlib(m)
            | ImportResolution::Cached(m)
            | ImportResolution::Installed(m)
            | ImportResolution::Unresolved(m) => m,
        }
    }
}

/// The simulated package index + install cache.
#[derive(Default)]
pub struct PackageIndex {
    installed: RwLock<BTreeSet<String>>,
}

impl PackageIndex {
    pub fn new() -> Self {
        PackageIndex::default()
    }

    pub fn is_installed(&self, module: &str) -> bool {
        self.installed.read().contains(module)
    }

    pub fn installed_count(&self) -> usize {
        self.installed.read().len()
    }

    /// Resolve one root module name.
    pub fn resolve(&self, module: &str) -> ImportResolution {
        if STDLIB.binary_search(&module).is_ok() {
            return ImportResolution::Stdlib(module.to_string());
        }
        if self.is_installed(module) {
            return ImportResolution::Cached(module.to_string());
        }
        if KNOWN_PYPI.binary_search(&module).is_ok() {
            self.installed.write().insert(module.to_string());
            return ImportResolution::Installed(module.to_string());
        }
        ImportResolution::Unresolved(module.to_string())
    }
}

/// Extract the *root* modules imported by `code` (both statement forms;
/// relative imports are local to the workflow bundle and skipped).
pub fn imported_modules(code: &str) -> Vec<String> {
    let tree = pyparse::parse(code);
    let mut roots: BTreeSet<String> = BTreeSet::new();
    for kind in [SyntaxKind::ImportStmt, SyntaxKind::ImportFromStmt] {
        for node in tree.find_kind(kind) {
            match kind {
                SyntaxKind::ImportStmt => {
                    // Every ImportAlias child's first Name is a root module.
                    for &c in &tree.node(node).children {
                        if tree.kind(c) == Some(SyntaxKind::ImportAlias) {
                            if let Some(tok) = tree
                                .node(c)
                                .children
                                .iter()
                                .filter_map(|&cc| tree.leaf(cc))
                                .find(|t| t.kind == TokKind::Name)
                            {
                                roots.insert(tok.text.clone());
                            }
                        }
                    }
                }
                SyntaxKind::ImportFromStmt => {
                    // `from X.Y import Z` → root X; `from . import Z` → skip.
                    let mut found_from = false;
                    for &c in &tree.node(node).children {
                        if let Some(tok) = tree.leaf(c) {
                            if tok.is_kw("from") {
                                found_from = true;
                                continue;
                            }
                            if tok.is_kw("import") {
                                break;
                            }
                            if found_from && tok.kind == TokKind::Name {
                                roots.insert(tok.text.clone());
                                break;
                            }
                            if found_from && (tok.is_op(".") || tok.is_op("...")) {
                                break; // relative import
                            }
                        }
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    roots.into_iter().collect()
}

/// Resolve every import in `code` against `index`.
pub fn resolve_imports(code: &str, index: &PackageIndex) -> Vec<ImportResolution> {
    imported_modules(code)
        .iter()
        .map(|m| index.resolve(m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_sorted_for_binary_search() {
        let mut s = STDLIB.to_vec();
        s.sort_unstable();
        assert_eq!(s, STDLIB);
        let mut k = KNOWN_PYPI.to_vec();
        k.sort_unstable();
        assert_eq!(k, KNOWN_PYPI);
    }

    #[test]
    fn extracts_root_modules() {
        let code = "\
import os
import os.path
import numpy as np
from collections import deque
from dispel4py.base import IterativePE
from . import sibling
from ..pkg import thing
";
        let mods = imported_modules(code);
        assert_eq!(mods, vec!["collections", "dispel4py", "numpy", "os"]);
    }

    #[test]
    fn resolution_classes() {
        let ix = PackageIndex::new();
        assert_eq!(ix.resolve("os"), ImportResolution::Stdlib("os".into()));
        assert_eq!(ix.resolve("numpy"), ImportResolution::Installed("numpy".into()));
        // Second resolution hits the cache — the §IV-F caching behaviour.
        assert_eq!(ix.resolve("numpy"), ImportResolution::Cached("numpy".into()));
        assert_eq!(
            ix.resolve("totally_private_pkg"),
            ImportResolution::Unresolved("totally_private_pkg".into())
        );
        assert_eq!(ix.installed_count(), 1);
    }

    #[test]
    fn resolve_imports_end_to_end() {
        let ix = PackageIndex::new();
        let code = "import random\nimport redis\nfrom mystery import thing\n";
        let res = resolve_imports(code, &ix);
        assert_eq!(res.len(), 3);
        assert!(res.contains(&ImportResolution::Unresolved("mystery".into())));
        assert!(res.contains(&ImportResolution::Installed("redis".into())));
        assert!(res.contains(&ImportResolution::Stdlib("random".into())));
    }

    #[test]
    fn no_imports_no_resolutions() {
        let ix = PackageIndex::new();
        assert!(resolve_imports("x = 1\n", &ix).is_empty());
        assert!(resolve_imports("", &ix).is_empty());
    }

    #[test]
    fn malformed_code_still_scanned() {
        let ix = PackageIndex::new();
        let res = resolve_imports("import json\ndef broken(:\n", &ix);
        assert_eq!(res, vec![ImportResolution::Stdlib("json".into())]);
    }
}
