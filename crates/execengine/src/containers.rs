//! Simulated container pool (paper §III "Dockerized architecture",
//! "auto-provisioning"; §II-B "cold start latency").
//!
//! The measurable serverless behaviours — cold-start latency on first use,
//! warm reuse afterwards, a bounded pool that provisions on demand — are
//! modelled explicitly so the benches can show them. The cold-start delay
//! is configurable and defaults to a laptop-scale 25 ms (real Docker cold
//! starts are 100×; only the ratio matters for the evaluation shape).

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum containers that may exist at once.
    pub max_containers: usize,
    /// Simulated cold-start latency (image pull + boot).
    pub cold_start: Duration,
    /// Containers pre-warmed at pool creation.
    pub prewarmed: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_containers: 8,
            cold_start: Duration::from_millis(25),
            prewarmed: 0,
        }
    }
}

/// A provisioned container handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    pub id: u64,
    /// How many executions this container has served.
    pub uses: u64,
}

/// Pool statistics (exposed for the E8/E9 benches and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub cold_starts: u64,
    pub warm_hits: u64,
    pub created: u64,
    pub waited: u64,
}

struct PoolState {
    warm: Vec<Container>,
    total: usize,
    next_id: u64,
    stats: PoolStats,
}

/// The container pool.
pub struct ContainerPool {
    config: PoolConfig,
    state: Mutex<PoolState>,
    released: Condvar,
}

impl ContainerPool {
    pub fn new(config: PoolConfig) -> Self {
        let mut warm = Vec::new();
        let mut next_id = 0;
        for _ in 0..config.prewarmed.min(config.max_containers) {
            next_id += 1;
            warm.push(Container { id: next_id, uses: 0 });
        }
        let total = warm.len();
        ContainerPool {
            config,
            state: Mutex::new(PoolState {
                warm,
                total,
                next_id,
                stats: PoolStats {
                    created: total as u64,
                    ..PoolStats::default()
                },
            }),
            released: Condvar::new(),
        }
    }

    /// Acquire a container: a warm one immediately, a cold-started new one
    /// if the pool has headroom, otherwise block until a release. Returns
    /// `(container, was_cold_start)`.
    pub fn acquire(&self) -> (Container, bool) {
        let mut st = self.state.lock();
        loop {
            if let Some(c) = st.warm.pop() {
                st.stats.warm_hits += 1;
                return (c, false);
            }
            if st.total < self.config.max_containers {
                // Auto-provision: cold start outside the lock.
                st.total += 1;
                st.next_id += 1;
                st.stats.cold_starts += 1;
                st.stats.created += 1;
                let id = st.next_id;
                drop(st);
                std::thread::sleep(self.config.cold_start);
                return (Container { id, uses: 0 }, true);
            }
            st.stats.waited += 1;
            self.released.wait(&mut st);
        }
    }

    /// Return a container to the warm pool.
    pub fn release(&self, mut container: Container) {
        container.uses += 1;
        let mut st = self.state.lock();
        st.warm.push(container);
        drop(st);
        self.released.notify_one();
    }

    pub fn stats(&self) -> PoolStats {
        self.state.lock().stats
    }

    pub fn warm_count(&self) -> usize {
        self.state.lock().warm.len()
    }

    pub fn config(&self) -> &PoolConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    fn fast_pool(max: usize, prewarmed: usize) -> ContainerPool {
        ContainerPool::new(PoolConfig {
            max_containers: max,
            cold_start: Duration::from_millis(5),
            prewarmed,
        })
    }

    #[test]
    fn first_acquire_is_cold_then_warm() {
        let pool = fast_pool(2, 0);
        let t0 = Instant::now();
        let (c, cold) = pool.acquire();
        assert!(cold);
        assert!(t0.elapsed() >= Duration::from_millis(5), "cold start latency");
        pool.release(c);
        let t1 = Instant::now();
        let (c2, cold2) = pool.acquire();
        assert!(!cold2, "released container is reused warm");
        assert!(t1.elapsed() < Duration::from_millis(5));
        assert_eq!(c2.uses, 1);
        let s = pool.stats();
        assert_eq!(s.cold_starts, 1);
        assert_eq!(s.warm_hits, 1);
    }

    #[test]
    fn prewarmed_containers_skip_cold_start() {
        let pool = fast_pool(2, 2);
        let (_c, cold) = pool.acquire();
        assert!(!cold);
        assert_eq!(pool.stats().cold_starts, 0);
    }

    #[test]
    fn pool_bounded_and_blocking() {
        let pool = Arc::new(fast_pool(1, 0));
        let (c, _) = pool.acquire();
        let p2 = pool.clone();
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            let (c2, cold) = p2.acquire();
            (t0.elapsed(), cold, c2)
        });
        std::thread::sleep(Duration::from_millis(20));
        pool.release(c);
        let (waited, cold, _) = handle.join().unwrap();
        assert!(!cold, "the blocked acquire gets the released container");
        assert!(waited >= Duration::from_millis(15));
        assert!(pool.stats().waited >= 1);
    }

    #[test]
    fn auto_provisions_up_to_max() {
        let pool = fast_pool(3, 0);
        let a = pool.acquire();
        let b = pool.acquire();
        let c = pool.acquire();
        assert!(a.1 && b.1 && c.1);
        assert_eq!(pool.stats().created, 3);
        pool.release(a.0);
        pool.release(b.0);
        pool.release(c.0);
        assert_eq!(pool.warm_count(), 3);
    }

    #[test]
    fn concurrent_acquire_release_is_safe() {
        let pool = Arc::new(fast_pool(4, 0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        let (c, _) = pool.acquire();
                        pool.release(c);
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.warm_hits + s.cold_starts, 160);
        assert!(s.created <= 4);
    }
}
