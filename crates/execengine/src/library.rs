//! Runnable-workflow library.
//!
//! The paper's engine executes the registered *Python* code with a Python
//! interpreter. A pure-Rust reproduction cannot run Python, so registered
//! workflow names map to native [`WorkflowGraph`] builders instead; the
//! registry still stores the Python source for search/recommendation, and
//! this library supplies the executable twin (substitution documented in
//! DESIGN.md). The stock paper workflows are pre-registered.

use d4py::workflows;
use d4py::WorkflowGraph;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

type Builder = Arc<dyn Fn() -> WorkflowGraph + Send + Sync>;

/// Name → graph-builder map.
#[derive(Default)]
pub struct WorkflowLibrary {
    builders: RwLock<HashMap<String, Builder>>,
}

impl WorkflowLibrary {
    /// Empty library.
    pub fn new() -> Self {
        WorkflowLibrary::default()
    }

    /// Library pre-loaded with the paper's stock workflows:
    /// `isprime_wf` (Fig. 5), `wordcount_wf` (Fig. 7's words entries),
    /// `anomaly_wf` (Fig. 8), and the doc example `doubler_wf`.
    pub fn with_stock_workflows() -> Self {
        let lib = WorkflowLibrary::new();
        lib.register("isprime_wf", workflows::isprime_graph);
        lib.register("wordcount_wf", workflows::word_count_graph);
        lib.register("anomaly_wf", || workflows::anomaly_graph(50.0));
        lib.register("doubler_wf", workflows::doubler_graph);
        lib
    }

    /// Register (or replace) a builder under `name`.
    pub fn register<F>(&self, name: &str, builder: F)
    where
        F: Fn() -> WorkflowGraph + Send + Sync + 'static,
    {
        self.builders
            .write()
            .insert(name.to_string(), Arc::new(builder));
    }

    /// Build a fresh graph for `name`.
    pub fn build(&self, name: &str) -> Option<WorkflowGraph> {
        let b = self.builders.read().get(name).cloned()?;
        Some(b())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.builders.read().contains_key(name)
    }

    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.builders.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_workflows_present_and_buildable() {
        let lib = WorkflowLibrary::with_stock_workflows();
        assert_eq!(
            lib.names(),
            vec!["anomaly_wf", "doubler_wf", "isprime_wf", "wordcount_wf"]
        );
        for name in lib.names() {
            let g = lib.build(&name).unwrap();
            assert!(g.validate().is_ok(), "{name}");
        }
    }

    #[test]
    fn custom_registration_and_replacement() {
        let lib = WorkflowLibrary::new();
        assert!(!lib.contains("custom"));
        lib.register("custom", workflows::doubler_graph);
        assert!(lib.contains("custom"));
        let g1 = lib.build("custom").unwrap();
        assert_eq!(g1.name, "doubler_wf");
        lib.register("custom", workflows::isprime_graph);
        let g2 = lib.build("custom").unwrap();
        assert_eq!(g2.name, "isprime_wf", "replacement takes effect");
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(WorkflowLibrary::new().build("nope").is_none());
    }

    #[test]
    fn builders_mint_fresh_graphs() {
        let lib = WorkflowLibrary::with_stock_workflows();
        let a = lib.build("isprime_wf").unwrap();
        let b = lib.build("isprime_wf").unwrap();
        // Distinct instances (no shared state between runs).
        assert_eq!(a.nodes.len(), b.nodes.len());
    }
}
