//! The execution engine proper: container acquisition, import resolution,
//! enactment, and batch vs. streaming response delivery (paper §IV-E).
//!
//! Laminar 1.0 ran the whole workflow, captured stdout, and returned one
//! complete HTTP/1.1 response ([`ResponseMode::Batch`]). Laminar 2.0
//! transfers stdout to a concurrent queue and streams it line-by-line over
//! HTTP/2 ([`ResponseMode::Streaming`]). Both paths share the enactment
//! code; the only difference is *when* frames are released to the consumer
//! — which is exactly the property experiment E8 measures.

use crate::containers::{ContainerPool, PoolConfig};
use crate::imports::{resolve_imports, ImportResolution, PackageIndex};
use crate::library::WorkflowLibrary;
use crossbeam_channel::{unbounded, Receiver, Sender};
use d4py::mapping::run_with_options;
use d4py::monitor::OutputSink;
use d4py::{DeadLetterEntry, FaultStats, GraphError, Mapping, RunInput, RunOptions};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// How the engine releases output to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseMode {
    /// Laminar 1.0 / HTTP 1.1: everything after completion.
    Batch,
    /// Laminar 2.0 / HTTP 2: line-by-line as produced.
    Streaming,
}

/// One frame of an execution response stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Engine-side progress notes (container acquired, imports resolved).
    Info(String),
    /// One captured output line.
    Line(String),
    /// Per-rank iteration summary line (verbose mode).
    Summary(String),
    /// One datum the supervisor gave up on (`FaultPolicy::DeadLetter`).
    DeadLetter(DeadLetterEntry),
    /// Fault/retry/timeout counters for the run; emitted once before
    /// `End` whenever the run was not fault-free.
    Faults(FaultStats),
    /// Terminal frame: success flag + total duration.
    End { ok: bool, duration: Duration },
    /// Terminal frame on failure — a typed error, not a formatted string,
    /// so consumers can match on the failure class.
    Error(EngineError),
}

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    UnknownWorkflow(String),
    UnresolvedImport(String),
    Graph(GraphError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownWorkflow(w) => write!(f, "no runnable workflow named '{w}'"),
            EngineError::UnresolvedImport(m) => write!(f, "cannot resolve import '{m}'"),
            EngineError::Graph(g) => write!(f, "graph error: {g}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GraphError> for EngineError {
    fn from(g: GraphError) -> Self {
        EngineError::Graph(g)
    }
}

/// A fully-specified execution request.
#[derive(Clone)]
pub struct ExecRequest {
    pub workflow: String,
    /// Python source of the workflow (for import resolution). May be empty.
    pub code: String,
    pub input: RunInput,
    pub mapping: Mapping,
    pub mode: ResponseMode,
    /// Include per-rank summaries (the CLI's `-v`).
    pub verbose: bool,
    /// Enactment fault policy and (dynamic mapping) per-task timeout.
    pub options: RunOptions,
}

/// Collected result of a completed execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    pub lines: Vec<String>,
    pub summaries: Vec<String>,
    pub cold_start: bool,
    pub imports: Vec<ImportResolution>,
    pub duration: Duration,
    pub dead_letters: Vec<DeadLetterEntry>,
    pub fault_stats: FaultStats,
}

/// The serverless execution engine.
pub struct ExecutionEngine {
    pool: Arc<ContainerPool>,
    packages: Arc<PackageIndex>,
    library: Arc<WorkflowLibrary>,
}

impl ExecutionEngine {
    pub fn new(pool_config: PoolConfig, library: WorkflowLibrary) -> Self {
        ExecutionEngine {
            pool: Arc::new(ContainerPool::new(pool_config)),
            packages: Arc::new(PackageIndex::new()),
            library: Arc::new(library),
        }
    }

    /// Engine with the stock workflows and default pool.
    pub fn with_stock() -> Self {
        ExecutionEngine::new(PoolConfig::default(), WorkflowLibrary::with_stock_workflows())
    }

    pub fn pool(&self) -> &ContainerPool {
        &self.pool
    }

    pub fn packages(&self) -> &PackageIndex {
        &self.packages
    }

    pub fn library(&self) -> &WorkflowLibrary {
        &self.library
    }

    /// Start an execution; frames arrive on the returned receiver. The
    /// terminal frame is always `End` or `Error`.
    pub fn execute(&self, req: ExecRequest) -> Receiver<Frame> {
        let (tx, rx) = unbounded::<Frame>();
        let pool = self.pool.clone();
        let packages = self.packages.clone();
        let library = self.library.clone();
        std::thread::spawn(move || run_request(req, &pool, &packages, &library, tx));
        rx
    }

    /// Run to completion and collect everything (convenience for tests and
    /// the sequential client path).
    pub fn execute_collect(&self, req: ExecRequest) -> Result<ExecutionReport, EngineError> {
        let rx = self.execute(req);
        let mut lines = Vec::new();
        let mut summaries = Vec::new();
        let mut cold = false;
        let mut imports = Vec::new();
        let mut duration = Duration::ZERO;
        let mut dead_letters = Vec::new();
        let mut fault_stats = FaultStats::default();
        for frame in rx.iter() {
            match frame {
                Frame::Line(l) => lines.push(l),
                Frame::Summary(s) => summaries.push(s),
                Frame::Info(i) => {
                    if i.contains("cold start") {
                        cold = true;
                    }
                    if let Some(rest) = i.strip_prefix("import ") {
                        imports.push(ImportResolution::Cached(rest.to_string()));
                    }
                }
                Frame::DeadLetter(d) => dead_letters.push(d),
                Frame::Faults(s) => fault_stats = s,
                Frame::End { duration: d, .. } => {
                    duration = d;
                    break;
                }
                Frame::Error(e) => {
                    return Err(e);
                }
            }
        }
        Ok(ExecutionReport {
            lines,
            summaries,
            cold_start: cold,
            imports,
            duration,
            dead_letters,
            fault_stats,
        })
    }
}

fn run_request(
    req: ExecRequest,
    pool: &ContainerPool,
    packages: &PackageIndex,
    library: &WorkflowLibrary,
    tx: Sender<Frame>,
) {
    let started = std::time::Instant::now();

    // 1. Resolve the workflow to a runnable graph.
    let Some(graph) = library.build(&req.workflow) else {
        let _ = tx.send(Frame::Error(EngineError::UnknownWorkflow(req.workflow.clone())));
        return;
    };

    // 2. Auto-import dependency resolution over the registered source.
    for res in resolve_imports(&req.code, packages) {
        match &res {
            ImportResolution::Unresolved(m) => {
                let _ = tx.send(Frame::Error(EngineError::UnresolvedImport(m.clone())));
                return;
            }
            other => {
                let _ = tx.send(Frame::Info(format!("import {}", other.module())));
            }
        }
    }

    // 3. Acquire a container (cold start visible to the caller).
    let (container, cold) = pool.acquire();
    if cold {
        let _ = tx.send(Frame::Info(format!("container {} cold start", container.id)));
    } else {
        let _ = tx.send(Frame::Info(format!("container {} warm", container.id)));
    }

    // 4. Enact. Streaming taps the sink; batch holds lines back.
    let result = match req.mode {
        ResponseMode::Streaming => {
            let tap_tx = tx.clone();
            let sink = OutputSink::with_tap(Arc::new(move |line: &str| {
                let _ = tap_tx.send(Frame::Line(line.to_string()));
            }));
            run_with_options(&graph, req.input.clone(), &req.mapping, sink, &req.options)
        }
        ResponseMode::Batch => {
            let sink = OutputSink::new();
            let r = run_with_options(&graph, req.input.clone(), &req.mapping, sink, &req.options);
            if let Ok(res) = &r {
                for line in res.lines() {
                    let _ = tx.send(Frame::Line(line.clone()));
                }
            }
            r
        }
    };

    pool.release(container);

    match result {
        Ok(res) => {
            if req.verbose {
                for ((pe, rank), n) in &res.counts {
                    let _ = tx.send(Frame::Summary(format!(
                        "{pe} (rank {rank}): Processed {n} iterations."
                    )));
                }
            }
            for entry in &res.dead_letters {
                let _ = tx.send(Frame::DeadLetter(entry.clone()));
            }
            if !res.fault_stats.is_clean() {
                let _ = tx.send(Frame::Faults(res.fault_stats.clone()));
            }
            let _ = tx.send(Frame::End {
                ok: true,
                duration: started.elapsed(),
            });
        }
        Err(e) => {
            let _ = tx.send(Frame::Error(EngineError::from(e)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn engine() -> ExecutionEngine {
        ExecutionEngine::new(
            PoolConfig {
                max_containers: 2,
                cold_start: Duration::from_millis(2),
                prewarmed: 0,
            },
            WorkflowLibrary::with_stock_workflows(),
        )
    }

    fn req(workflow: &str, mode: ResponseMode) -> ExecRequest {
        ExecRequest {
            workflow: workflow.into(),
            code: "import random\n".into(),
            input: RunInput::Iterations(10),
            mapping: Mapping::Simple,
            mode,
            verbose: false,
            options: RunOptions::default(),
        }
    }

    #[test]
    fn batch_execution_collects_lines() {
        let rep = engine().execute_collect(req("doubler_wf", ResponseMode::Batch)).unwrap();
        assert_eq!(rep.lines.len(), 10);
        assert!(rep.cold_start, "first run on an empty pool is cold");
        assert_eq!(rep.lines[0], "got 0");
    }

    #[test]
    fn second_execution_is_warm() {
        let e = engine();
        let r1 = e.execute_collect(req("doubler_wf", ResponseMode::Batch)).unwrap();
        let r2 = e.execute_collect(req("doubler_wf", ResponseMode::Batch)).unwrap();
        assert!(r1.cold_start);
        assert!(!r2.cold_start);
    }

    #[test]
    fn streaming_delivers_before_completion() {
        // A slow workflow: streaming must deliver the first line long
        // before the run completes (the §IV-E time-to-first-output claim).
        let lib = WorkflowLibrary::with_stock_workflows();
        lib.register("slow_wf", || {
            use d4py::prelude::*;
            let mut g = WorkflowGraph::new("slow_wf");
            let src = g.add(ProducerPE::new("Src", |i| Some(Data::from(i as i64))));
            let slow = g.add(IterativePE::new("Slow", |d: Data| {
                std::thread::sleep(Duration::from_millis(10));
                Some(d)
            }));
            let sink = g.add(ConsumerPE::new("Out", |d: Data, ctx: &mut Context<'_>| {
                ctx.log(format!("{d}"));
            }));
            g.connect(src, OUTPUT, slow, INPUT).unwrap();
            g.connect(slow, OUTPUT, sink, INPUT).unwrap();
            g
        });
        let e = ExecutionEngine::new(
            PoolConfig {
                cold_start: Duration::from_millis(1),
                ..PoolConfig::default()
            },
            lib,
        );
        let mut r = req("slow_wf", ResponseMode::Streaming);
        r.input = RunInput::Iterations(10);
        let rx = e.execute(r);
        let t0 = Instant::now();
        let mut first_line_at = None;
        let mut end_at = None;
        for frame in rx.iter() {
            match frame {
                Frame::Line(_) if first_line_at.is_none() => first_line_at = Some(t0.elapsed()),
                Frame::End { .. } => {
                    end_at = Some(t0.elapsed());
                    break;
                }
                Frame::Error(e) => panic!("{e}"),
                _ => {}
            }
        }
        let first = first_line_at.expect("saw a line");
        let end = end_at.expect("saw the end");
        assert!(
            first < end / 2,
            "streaming TTFO {first:?} should be far before completion {end:?}"
        );
    }

    #[test]
    fn batch_delivers_only_after_completion() {
        let e = engine();
        let mut r = req("doubler_wf", ResponseMode::Batch);
        r.input = RunInput::Iterations(5);
        let rx = e.execute(r);
        let frames: Vec<Frame> = rx.iter().take_while(|f| !matches!(f, Frame::End { .. })).collect();
        let lines = frames.iter().filter(|f| matches!(f, Frame::Line(_))).count();
        assert_eq!(lines, 5);
    }

    #[test]
    fn unknown_workflow_errors() {
        let err = engine()
            .execute_collect(req("missing_wf", ResponseMode::Batch))
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownWorkflow("missing_wf".into()));
    }

    #[test]
    fn unresolved_import_errors() {
        let e = engine();
        let mut r = req("doubler_wf", ResponseMode::Batch);
        r.code = "import not_a_real_package\n".into();
        let err = e.execute_collect(r).unwrap_err();
        assert_eq!(err, EngineError::UnresolvedImport("not_a_real_package".into()));
    }

    #[test]
    fn dead_letter_policy_surfaces_dlq_in_report() {
        let lib = WorkflowLibrary::with_stock_workflows();
        lib.register("flaky_wf", || {
            use d4py::prelude::*;
            let mut g = WorkflowGraph::new("flaky_wf");
            let src = g.add(ProducerPE::new("Src", |i| Some(Data::from(i as i64))));
            let flaky = g.add(IterativePE::new("Flaky", |d: Data| {
                let v = d.as_int().unwrap_or(0);
                if v % 3 == 0 {
                    panic!("flaky on {v}");
                }
                Some(d)
            }));
            let sink = g.add(ConsumerPE::new("Out", |d: Data, ctx: &mut Context<'_>| {
                ctx.log(format!("{d}"));
            }));
            g.connect(src, OUTPUT, flaky, INPUT).unwrap();
            g.connect(flaky, OUTPUT, sink, INPUT).unwrap();
            g
        });
        let e = ExecutionEngine::new(PoolConfig::default(), lib);
        let mut r = req("flaky_wf", ResponseMode::Batch);
        r.input = RunInput::Iterations(9);
        r.options.fault_policy = d4py::FaultPolicy::DeadLetter { max_attempts: 2 };
        let rep = e.execute_collect(r).unwrap();
        assert_eq!(rep.lines.len(), 6, "0, 3, 6 dead-lettered: {:?}", rep.lines);
        assert_eq!(rep.dead_letters.len(), 3);
        assert!(rep.dead_letters.iter().all(|d| d.pe == "Flaky1"));
        assert_eq!(rep.fault_stats.dead_letters, 3);
        assert!(rep.fault_stats.retries > 0, "{:?}", rep.fault_stats);
    }

    #[test]
    fn failing_run_surfaces_typed_graph_error() {
        let lib = WorkflowLibrary::with_stock_workflows();
        lib.register("boom_wf", || {
            use d4py::prelude::*;
            let mut g = WorkflowGraph::new("boom_wf");
            let src = g.add(ProducerPE::new("Src", |i| Some(Data::from(i as i64))));
            let boom = g.add(ConsumerPE::new("Boom", |_d: Data, _ctx: &mut Context<'_>| {
                panic!("kaboom");
            }));
            g.connect(src, OUTPUT, boom, INPUT).unwrap();
            g
        });
        let e = ExecutionEngine::new(PoolConfig::default(), lib);
        let mut r = req("boom_wf", ResponseMode::Batch);
        r.input = RunInput::Iterations(1);
        let err = e.execute_collect(r).unwrap_err();
        match err {
            EngineError::Graph(GraphError::WorkerPanicked(m)) => assert!(m.contains("kaboom")),
            other => panic!("expected typed worker panic, got {other:?}"),
        }
    }

    #[test]
    fn verbose_adds_summaries() {
        let e = engine();
        let mut r = req("doubler_wf", ResponseMode::Batch);
        r.verbose = true;
        let rep = e.execute_collect(r).unwrap();
        assert!(!rep.summaries.is_empty());
        assert!(rep.summaries[0].contains("Processed"), "{:?}", rep.summaries);
    }

    #[test]
    fn parallel_mapping_through_engine() {
        let e = engine();
        let mut r = req("isprime_wf", ResponseMode::Streaming);
        r.mapping = Mapping::Multi { processes: 9 };
        r.input = RunInput::Iterations(20);
        let rep = e.execute_collect(r).unwrap();
        for l in &rep.lines {
            assert!(l.contains("is prime"));
        }
    }
}
