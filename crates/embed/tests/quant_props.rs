//! Property tests for the int8 quantized search tier (`embed::quant`):
//!
//! * quantization is a projection: re-quantizing a dequantized vector
//!   reproduces the codes bit-for-bit (the representable grid is a fixed
//!   point), so rebuild paths can never drift from incremental paths;
//! * the 8-lane widening dot kernel equals the naive widened sum;
//! * two-phase top-k always returns **exact** `f32` scores in the engine's
//!   total order, and with a window ≥ 4·k its answer is bit-identical to
//!   the exact scan on random L2-normalised corpora (≥ 0.99 aggregate
//!   recall already at 2·k).

use embed::dense::{slab_topk, PAR_SCAN_THRESHOLD};
use embed::quant::{dot_i8, quantize_into, two_phase_topk, QuantizedVec};
use embed::{dot, DenseVec, ScoredRow, DIM};
use proptest::prelude::*;

/// Case count: the pinned default, or `LAMINAR_PROPTEST_CASES` when set.
/// `PROPTEST_RNG_SEED=<n>` pins the RNG; the committed
/// `.proptest-regressions` seeds are re-run before any novel case.
fn cases(default: u32) -> u32 {
    std::env::var("LAMINAR_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic pseudo-random normalised vector (same LCG the index
/// property suite uses; no rand dependency).
fn lcg_vec(seed: &mut u64) -> DenseVec {
    let mut values = vec![0.0f32; DIM];
    for v in &mut values {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 1.0;
    }
    DenseVec::normalised(values)
}

/// A corpus with both tiers populated, row `i` keyed `i`.
struct Corpus {
    slab: Vec<f32>,
    codes: Vec<i8>,
    scales: Vec<f32>,
    keys: Vec<u64>,
}

fn corpus(n: usize, mut seed: u64) -> Corpus {
    let mut slab = Vec::with_capacity(n * DIM);
    let mut codes = vec![0i8; n * DIM];
    let mut scales = Vec::with_capacity(n);
    for i in 0..n {
        let v = lcg_vec(&mut seed);
        slab.extend_from_slice(&v.values);
        scales.push(quantize_into(&v.values, &mut codes[i * DIM..(i + 1) * DIM]));
    }
    Corpus {
        slab,
        codes,
        scales,
        keys: (0..n as u64).collect(),
    }
}

fn exact_topk(query: &[f32], c: &Corpus, k: usize) -> Vec<ScoredRow> {
    slab_topk(query, &c.slab, &c.keys, k, |_| true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// quantize(dequantize(quantize(x))) is idempotent at the code level:
    /// the i8 grid is a fixed point of the round trip. (The scale may
    /// wobble by one ulp — `127·(s/127)` need not be exactly `s` in f32 —
    /// which is why the *codes* are the identity that matters.)
    #[test]
    fn quantize_dequantize_quantize_is_idempotent(
        values in proptest::collection::vec(-1.0f32..1.0, 1..=DIM),
    ) {
        let q1 = QuantizedVec::quantize(&values);
        let q2 = QuantizedVec::quantize(&q1.dequantize());
        prop_assert_eq!(&q1.codes, &q2.codes);
        // And the projection is stable under further round trips.
        let q3 = QuantizedVec::quantize(&q2.dequantize());
        prop_assert_eq!(&q2.codes, &q3.codes);
        prop_assert_eq!(q2.scale.to_bits(), q3.scale.to_bits());
    }

    /// The unrolled widening kernel equals the naive widened sum, at any
    /// length (including the unrolled remainder and unequal lengths).
    #[test]
    fn widening_dot_matches_naive_sum(
        a in proptest::collection::vec(any::<i8>(), 0..600),
        b in proptest::collection::vec(any::<i8>(), 0..600),
    ) {
        let n = a.len().min(b.len());
        let naive: i32 = (0..n).map(|i| i32::from(a[i]) * i32::from(b[i])).sum();
        prop_assert_eq!(dot_i8(&a, &b), naive);
    }

    /// Two-phase invariants on random corpora: the result is always
    /// sorted under the engine's `(score desc, key asc)` total order, has
    /// `min(k, accepted)` rows, honours the accept filter, and every
    /// score is the bitwise-exact `f32` dot — never a dequantized
    /// approximation.
    #[test]
    fn two_phase_scores_are_exact_and_ordered(
        seed in any::<u64>(),
        k in 1usize..8,
        factor in 1usize..5,
    ) {
        let n = 96;
        let c = corpus(n, seed);
        let mut qseed = seed ^ 0x9e3779b97f4a7c15;
        let query = lcg_vec(&mut qseed);
        let qquant = QuantizedVec::quantize(&query.values);
        let (rows, stats) = two_phase_topk(
            &query.values, &qquant, &c.slab, &c.codes, &c.scales, &c.keys,
            k, k * factor, |row| row % 3 != 0,
        );
        let accepted = (0..n).filter(|row| row % 3 != 0).count();
        prop_assert_eq!(rows.len(), k.min(accepted));
        prop_assert!(stats.window >= k);
        prop_assert!(stats.candidates <= stats.window);
        for pair in rows.windows(2) {
            prop_assert!(
                pair[0].score > pair[1].score
                    || (pair[0].score == pair[1].score && pair[0].key < pair[1].key)
            );
        }
        for r in &rows {
            prop_assert!(r.row % 3 != 0, "accept filter honoured");
            let exact = dot(&query.values, &c.slab[r.row * DIM..(r.row + 1) * DIM]);
            prop_assert_eq!(r.score.to_bits(), exact.to_bits(), "full-precision score");
        }
    }
}

/// With a rescore window of 4·k the two-phase answer is bit-identical to
/// the exact `f32` top-k on random normalised corpora — below and above
/// the rayon partitioning threshold. (The quantization error of a
/// 256-d symmetric int8 code is ~1e-3 in cosine; the score spacing
/// around rank k on these corpora is an order of magnitude wider, so the
/// true top-k always survives phase 1 with 3·k slack.)
#[test]
fn recall_at_window_4k_is_exact() {
    let k = 5;
    for n in [2048, PAR_SCAN_THRESHOLD + 64] {
        for seed in [1u64, 2, 3] {
            let c = corpus(n, seed);
            let mut qseed = seed.wrapping_mul(0xfeed).wrapping_add(7);
            for _ in 0..4 {
                let query = lcg_vec(&mut qseed);
                let qquant = QuantizedVec::quantize(&query.values);
                let (rows, stats) = two_phase_topk(
                    &query.values, &qquant, &c.slab, &c.codes, &c.scales, &c.keys,
                    k, 4 * k, |_| true,
                );
                assert_eq!(stats.window, 4 * k);
                assert_eq!(rows, exact_topk(&query.values, &c, k), "n={n} seed={seed}");
            }
        }
    }
}

/// Even with the window squeezed to 2·k, aggregate recall@k across a
/// query pool stays ≥ 0.99.
#[test]
fn recall_at_window_2k_is_at_least_099() {
    let k = 5;
    let n = 4096;
    let c = corpus(n, 0x5eed);
    let mut qseed = 0xfeed_u64;
    let queries = 40;
    let mut matched = 0usize;
    for _ in 0..queries {
        let query = lcg_vec(&mut qseed);
        let qquant = QuantizedVec::quantize(&query.values);
        let (rows, _) = two_phase_topk(
            &query.values, &qquant, &c.slab, &c.codes, &c.scales, &c.keys,
            k, 2 * k, |_| true,
        );
        let exact = exact_topk(&query.values, &c, k);
        matched += rows
            .iter()
            .filter(|r| exact.iter().any(|e| e.key == r.key))
            .count();
    }
    let recall = matched as f64 / (queries * k) as f64;
    assert!(recall >= 0.99, "aggregate recall@{k} = {recall}");
}
