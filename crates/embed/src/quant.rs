//! Int8 scalar quantization and the two-phase (quantized candidate pass →
//! exact rescore) top-k scan.
//!
//! A full-precision slab scan is memory-bandwidth bound: every query
//! streams `rows · DIM · 4` bytes of `f32`. The quantized tier shrinks the
//! streamed bytes ~4× with **per-row symmetric quantization**: each row
//! stores `DIM` `i8` codes plus one `f32` scale, where
//! `scale = max|v| / 127` and `code_i = round(v_i / scale)`. The
//! approximate dot of two quantized vectors is the exact widened integer
//! dot times both scales:
//!
//! ```text
//! dot(a, b) ≈ Σ (ca_i · sa)(cb_i · sb) = (Σ ca_i·cb_i) · sa · sb
//! ```
//!
//! The integer accumulation is exact (`256 · 127² ≪ i32::MAX`), so the
//! only error is the per-component rounding — bounded by half a
//! quantization step, tiny against the score gaps of real corpora.
//!
//! **Two-phase scan** ([`two_phase_topk`]): phase 1 runs the quantized
//! kernel over *all* rows and keeps a candidate window of `w ≥ k` rows;
//! phase 2 rescores only those `w` rows against the `f32` slab and selects
//! the final top-k under the same total `(score, key)` order the exact
//! scan uses. Final scores and ranking are therefore always full
//! precision; quantization can only affect *which* rows reach the rescore,
//! and a window of a few multiples of `k` makes a miss vanishingly rare
//! (the recall property suite pins this down).

use std::time::{Duration, Instant};

use rayon::prelude::*;

use crate::dense::{dot, DIM, PAR_SCAN_THRESHOLD};
use crate::topk::{ScoredRow, TopK};

/// Largest code magnitude (symmetric: codes span `-127..=127`; `-128` is
/// never produced, keeping negation lossless).
pub const QUANT_MAX: f32 = 127.0;

/// Quantize `values` into the pre-sized `codes` buffer, returning the
/// per-row scale. An all-zero row quantizes to scale `0.0` and all-zero
/// codes (its approximate score against anything is exactly `0.0`, same
/// as the exact scan's).
pub fn quantize_into(values: &[f32], codes: &mut [i8]) -> f32 {
    debug_assert_eq!(values.len(), codes.len());
    let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        codes.fill(0);
        return 0.0;
    }
    let inv = QUANT_MAX / max_abs;
    for (c, &v) in codes.iter_mut().zip(values) {
        *c = (v * inv).round().clamp(-QUANT_MAX, QUANT_MAX) as i8;
    }
    max_abs / QUANT_MAX
}

/// Quantize into a freshly allocated code vector.
pub fn quantize_row(values: &[f32]) -> (f32, Vec<i8>) {
    let mut codes = vec![0i8; values.len()];
    let scale = quantize_into(values, &mut codes);
    (scale, codes)
}

/// Reconstruct the approximate values a quantized row stands for.
pub fn dequantize_row(scale: f32, codes: &[i8]) -> Vec<f32> {
    codes.iter().map(|&c| c as f32 * scale).collect()
}

/// A quantized query vector (the query-side counterpart of one slab row).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedVec {
    pub scale: f32,
    pub codes: Vec<i8>,
}

impl QuantizedVec {
    pub fn quantize(values: &[f32]) -> Self {
        let (scale, codes) = quantize_row(values);
        QuantizedVec { scale, codes }
    }

    pub fn dequantize(&self) -> Vec<f32> {
        dequantize_row(self.scale, &self.codes)
    }
}

/// Fused widening dot product: `i8 × i8 → i32` accumulation, unrolled
/// into eight independent lanes exactly like [`dot`] so the reduction
/// stays in vector registers. Inputs of unequal length score the common
/// prefix.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut lanes = [0i32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..8 {
            lanes[i] += xa[i] as i32 * xb[i] as i32;
        }
    }
    let mut sum: i32 = ca
        .remainder()
        .iter()
        .zip(cb.remainder())
        .map(|(&x, &y)| x as i32 * y as i32)
        .sum();
    for lane in lanes {
        sum += lane;
    }
    sum
}

/// Approximate score of one quantized row against a quantized query.
#[inline]
fn quant_score(qcodes: &[i8], qscale: f32, chunk: &[i8], row_scale: f32) -> f32 {
    dot_i8(qcodes, chunk) as f32 * (qscale * row_scale)
}

/// Phase-1 candidate selection: bounded top-`k` over the `i8` slab by
/// approximate score, same `(score, key)` total order and rayon
/// partitioning rules as the exact scan.
pub fn quantized_topk<F>(
    qcodes: &[i8],
    qscale: f32,
    codes: &[i8],
    scales: &[f32],
    keys: &[u64],
    k: usize,
    accept: F,
) -> Vec<ScoredRow>
where
    F: Fn(usize) -> bool + Sync,
{
    debug_assert_eq!(codes.len(), keys.len() * DIM);
    debug_assert_eq!(scales.len(), keys.len());
    if keys.len() >= PAR_SCAN_THRESHOLD {
        codes
            .par_chunks_exact(DIM)
            .enumerate()
            .fold(
                || TopK::new(k),
                |mut top, (row, chunk)| {
                    if accept(row) {
                        top.push(quant_score(qcodes, qscale, chunk, scales[row]), keys[row], row);
                    }
                    top
                },
            )
            .reduce(|| TopK::new(k), TopK::merge)
            .into_sorted()
    } else {
        let mut top = TopK::new(k);
        for (row, chunk) in codes.chunks_exact(DIM).enumerate() {
            if accept(row) {
                top.push(quant_score(qcodes, qscale, chunk, scales[row]), keys[row], row);
            }
        }
        top.into_sorted()
    }
}

/// Per-query accounting of one two-phase scan (feeds the `search_quant`
/// metrics row group).
#[derive(Debug, Clone, Copy)]
pub struct TwoPhaseStats {
    /// Candidate window requested (`≥ k`).
    pub window: usize,
    /// Rows the exact rescore actually visited (`≤ window`).
    pub candidates: usize,
    /// Phase-1 quantized scan wall time.
    pub phase1: Duration,
    /// Phase-2 exact-rescore wall time.
    pub rescore: Duration,
}

/// Two-phase top-k: quantized candidate pass over all rows, exact `f32`
/// rescore of the best `window` candidates, final top-`k` under the exact
/// total order. Returned scores are full precision — identical bits to
/// the exact scan's whenever every true top-k row lands in the window
/// (guaranteed when `window ≥ keys.len()`, overwhelmingly likely far
/// below it; see the recall property suite).
#[allow(clippy::too_many_arguments)]
pub fn two_phase_topk<F>(
    query: &[f32],
    qquant: &QuantizedVec,
    slab: &[f32],
    codes: &[i8],
    scales: &[f32],
    keys: &[u64],
    k: usize,
    window: usize,
    accept: F,
) -> (Vec<ScoredRow>, TwoPhaseStats)
where
    F: Fn(usize) -> bool + Sync,
{
    let window = window.max(k);
    let t0 = Instant::now();
    let candidates = quantized_topk(&qquant.codes, qquant.scale, codes, scales, keys, window, &accept);
    let phase1 = t0.elapsed();
    let t1 = Instant::now();
    let mut top = TopK::new(k);
    for c in &candidates {
        top.push(dot(query, &slab[c.row * DIM..(c.row + 1) * DIM]), c.key, c.row);
    }
    let rows = top.into_sorted();
    (
        rows,
        TwoPhaseStats {
            window,
            candidates: candidates.len(),
            phase1,
            rescore: t1.elapsed(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{slab_topk_serial, DenseVec};

    fn lcg_vec(seed: &mut u64) -> DenseVec {
        let mut values = vec![0.0f32; DIM];
        for v in &mut values {
            *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
        }
        DenseVec::normalised(values)
    }

    fn corpus(n: usize, seed: u64) -> (Vec<f32>, Vec<i8>, Vec<f32>, Vec<u64>) {
        let mut seed = seed;
        let mut slab = Vec::with_capacity(n * DIM);
        let mut codes = vec![0i8; n * DIM];
        let mut scales = Vec::with_capacity(n);
        for row in 0..n {
            let v = lcg_vec(&mut seed);
            scales.push(quantize_into(&v.values, &mut codes[row * DIM..(row + 1) * DIM]));
            slab.extend_from_slice(&v.values);
        }
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 2).collect();
        (slab, codes, scales, keys)
    }

    #[test]
    fn widening_dot_matches_naive() {
        let a: Vec<i8> = (0..DIM).map(|i| ((i as i32 * 37) % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..DIM).map(|i| ((i as i32 * 91) % 255 - 127) as i8).collect();
        let naive: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
        assert_eq!(dot_i8(&a, &b), naive);
        // Unequal lengths score the common prefix; the tail path is hit.
        let naive19: i32 = a[..19].iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
        assert_eq!(dot_i8(&a[..19], &b), naive19);
        assert_eq!(dot_i8(&[], &b), 0);
        // Worst case stays far from overflow.
        let lo = vec![-127i8; DIM];
        assert_eq!(dot_i8(&lo, &lo), DIM as i32 * 127 * 127);
    }

    #[test]
    fn quantize_bounds_and_zero_row() {
        let mut seed = 7u64;
        let v = lcg_vec(&mut seed);
        let (scale, codes) = quantize_row(&v.values);
        assert!(scale > 0.0);
        assert!(codes.iter().all(|&c| (-127..=127).contains(&(c as i32))));
        // The max-magnitude component maps to ±127.
        assert_eq!(codes.iter().map(|&c| (c as i32).abs()).max(), Some(127));
        // Reconstruction error ≤ half a step per component.
        for (&orig, &c) in v.values.iter().zip(&codes) {
            assert!((orig - c as f32 * scale).abs() <= scale * 0.5 + f32::EPSILON);
        }
        let (zs, zc) = quantize_row(&vec![0.0f32; DIM]);
        assert_eq!(zs, 0.0);
        assert!(zc.iter().all(|&c| c == 0));
    }

    #[test]
    fn quantize_dequantize_quantize_fixpoint() {
        let mut seed = 99u64;
        for _ in 0..16 {
            let v = lcg_vec(&mut seed);
            let q1 = QuantizedVec::quantize(&v.values);
            let q2 = QuantizedVec::quantize(&q1.dequantize());
            assert_eq!(q1.codes, q2.codes, "codes are a fixpoint");
            // The scale can wobble by one rounding of `max·s/127`; a third
            // pass must be fully stable against the second.
            let q3 = QuantizedVec::quantize(&q2.dequantize());
            assert_eq!(q2.codes, q3.codes);
        }
    }

    #[test]
    fn two_phase_full_window_equals_exact() {
        // window ≥ n ⇒ every row is rescored exactly ⇒ bit-identical to
        // the exact scan whatever the quantization error.
        let n = 300;
        let (slab, codes, scales, keys) = corpus(n, 5);
        let mut qs = 123u64;
        let q = lcg_vec(&mut qs);
        let qq = QuantizedVec::quantize(&q.values);
        for k in [1usize, 5, 17] {
            let exact = slab_topk_serial(&q.values, &slab, &keys, k, |_| true);
            let (got, stats) =
                two_phase_topk(&q.values, &qq, &slab, &codes, &scales, &keys, k, n, |_| true);
            assert_eq!(got, exact, "k={k}");
            assert_eq!(stats.candidates, n);
        }
        // Kind-style filtering flows through both phases.
        let exact = slab_topk_serial(&q.values, &slab, &keys, 5, |row| row % 2 == 0);
        let (got, _) =
            two_phase_topk(&q.values, &qq, &slab, &codes, &scales, &keys, 5, n, |row| row % 2 == 0);
        assert_eq!(got, exact);
        assert!(got.iter().all(|r| r.row % 2 == 0));
    }

    #[test]
    fn quantized_scan_parallel_matches_serial_past_threshold() {
        let n = PAR_SCAN_THRESHOLD + 64;
        let (_, codes, scales, keys) = corpus(n, 11);
        let mut qs = 77u64;
        let q = QuantizedVec::quantize(&lcg_vec(&mut qs).values);
        // Serial reference via an explicit TopK fold.
        let mut top = TopK::new(9);
        for (row, chunk) in codes.chunks_exact(DIM).enumerate() {
            top.push(quant_score(&q.codes, q.scale, chunk, scales[row]), keys[row], row);
        }
        let serial = top.into_sorted();
        let par = quantized_topk(&q.codes, q.scale, &codes, &scales, &keys, 9, |_| true);
        assert_eq!(par, serial);
    }

    #[test]
    fn two_phase_scores_are_exact_f32() {
        let n = 200;
        let (slab, codes, scales, keys) = corpus(n, 21);
        let mut qs = 4u64;
        let q = lcg_vec(&mut qs);
        let qq = QuantizedVec::quantize(&q.values);
        let (rows, stats) =
            two_phase_topk(&q.values, &qq, &slab, &codes, &scales, &keys, 5, 20, |_| true);
        assert_eq!(rows.len(), 5);
        assert_eq!(stats.window, 20);
        for r in &rows {
            let exact = dot(&q.values, &slab[r.row * DIM..(r.row + 1) * DIM]);
            assert_eq!(r.score.to_bits(), exact.to_bits(), "full-precision final score");
        }
    }
}
