//! Shared text/identifier tokenisation for the embedding substitutes.

/// Split an identifier on snake_case and camelCase boundaries, lowercased:
/// `NumberProducer` → `["number", "producer"]`, `read_file2` → `["read",
/// "file2"]`.
pub fn split_identifier(ident: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = ident.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '-' || c == '.' {
            if !cur.is_empty() {
                parts.push(std::mem::take(&mut cur));
            }
            continue;
        }
        let boundary = c.is_ascii_uppercase()
            && i > 0
            && (chars[i - 1].is_ascii_lowercase()
                || (i + 1 < chars.len()
                    && chars[i + 1].is_ascii_lowercase()
                    && chars[i - 1].is_ascii_uppercase()));
        if boundary && !cur.is_empty() {
            parts.push(std::mem::take(&mut cur));
        }
        cur.push(c.to_ascii_lowercase());
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}

/// English stopwords dropped from *text* tokenisation (descriptions and
/// queries). Small on purpose: discriminative words must survive.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "is", "it", "of", "on",
    "or", "that", "the", "this", "to", "with",
];

fn is_stopword(w: &str) -> bool {
    STOPWORDS.binary_search(&w).is_ok()
}

/// Tokenise natural-language text: split on non-alphanumerics, split
/// identifiers, lowercase, drop stopwords and single characters.
pub fn text_tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
        if raw.is_empty() {
            continue;
        }
        for part in split_identifier(raw) {
            if part.len() >= 2 && !is_stopword(&part) {
                out.push(part);
            }
        }
    }
    out
}

/// Subword tokens with positional n-grams for code: identifier subwords
/// plus the verbatim token (so `randint` and `rand int` both contribute).
pub fn subword_tokens(code_token: &str) -> Vec<String> {
    let mut out = vec![code_token.to_ascii_lowercase()];
    let parts = split_identifier(code_token);
    if parts.len() > 1 {
        out.extend(parts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_table_sorted() {
        let mut s = STOPWORDS.to_vec();
        s.sort_unstable();
        assert_eq!(s, STOPWORDS);
    }

    #[test]
    fn snake_and_camel_split() {
        assert_eq!(
            split_identifier("NumberProducer"),
            vec!["number", "producer"]
        );
        assert_eq!(split_identifier("read_file"), vec!["read", "file"]);
        assert_eq!(split_identifier("HTTPServer"), vec!["http", "server"]);
        assert_eq!(
            split_identifier("parseJSONValue"),
            vec!["parse", "json", "value"]
        );
        assert_eq!(split_identifier("x"), vec!["x"]);
        assert_eq!(split_identifier("__init__"), vec!["init"]);
        assert!(split_identifier("").is_empty());
    }

    #[test]
    fn text_tokens_drop_stopwords() {
        let toks = text_tokens("a PE that is able to detect anomalies");
        assert_eq!(toks, vec!["pe", "able", "detect", "anomalies"]);
    }

    #[test]
    fn text_tokens_split_identifiers() {
        let toks = text_tokens("the AnomalyDetectionPE class");
        assert!(toks.contains(&"anomaly".to_string()));
        assert!(toks.contains(&"detection".to_string()));
        assert!(toks.contains(&"class".to_string()));
    }

    #[test]
    fn subwords_keep_verbatim() {
        let toks = subword_tokens("randint");
        assert_eq!(toks, vec!["randint"]);
        let toks = subword_tokens("read_file");
        assert_eq!(toks, vec!["read_file", "read", "file"]);
    }

    #[test]
    fn numbers_survive() {
        let toks = text_tokens("returns the top 5 results");
        assert!(toks.contains(&"top".to_string()));
        assert!(!toks.contains(&"5".to_string()), "single chars dropped");
        let toks2 = text_tokens("base64 encoding");
        assert!(toks2.contains(&"base64".to_string()));
    }
}
