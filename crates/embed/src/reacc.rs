//! `ReaccSim` — the code-to-code retrieval substitute for the
//! ReACC-py-retriever (paper §VI, §VII-D).
//!
//! ReACC embeds the *surface token sequence* of code; it "excelled at clone
//! detection by recalling functions from identical or semantically
//! equivalent code" but degrades steeply on partial snippets (Fig. 13). The
//! substitute reproduces that profile deliberately:
//!
//! * features are exact lexical tokens plus order-sensitive token bigrams
//!   and trigrams — no variable globalisation, no structural abstraction;
//! * n-grams dominate the weight, so removing half the code removes far
//!   more than half of the matching mass (every n-gram crossing the cut
//!   dies), and renaming a variable kills every n-gram it participates in.
//!
//! Contrast with Aroma's SPT features, which survive both truncation
//! (features are local to kept statements) and renaming (`#VAR`).

use crate::dense::{fnv1a, hash_to_dim, DenseVec, DIM};
use crate::Embedder;
use pyparse::{lex, TokKind};
use std::collections::HashMap;

const W_UNIGRAM: f32 = 0.5;
const W_BIGRAM: f32 = 1.0;
const W_TRIGRAM: f32 = 1.5;

/// Deterministic code embedder mimicking ReACC-py-retriever's profile.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReaccSim;

impl ReaccSim {
    pub fn new() -> Self {
        ReaccSim
    }

    /// Embed a code snippet by its exact token sequence.
    pub fn embed_code(&self, code: &str) -> DenseVec {
        let (toks, _) = lex(code);
        let texts: Vec<&str> = toks
            .iter()
            .filter(|t| !t.kind.is_synthetic() && t.kind != TokKind::Op)
            .map(|t| t.text.as_str())
            .collect();
        if texts.is_empty() {
            return DenseVec::zero();
        }
        let mut counts: HashMap<u64, (f32, f32)> = HashMap::new();
        let mut add = |key: String, w: f32| {
            let e = counts.entry(fnv1a(key.as_bytes())).or_insert((0.0, w));
            e.0 += 1.0;
        };
        for t in &texts {
            add(format!("1:{t}"), W_UNIGRAM);
        }
        for w in texts.windows(2) {
            add(format!("2:{}|{}", w[0], w[1]), W_BIGRAM);
        }
        for w in texts.windows(3) {
            add(format!("3:{}|{}|{}", w[0], w[1], w[2]), W_TRIGRAM);
        }
        let mut values = vec![0.0f32; DIM];
        for (h, (count, weight)) in counts {
            let (dim, sign) = hash_to_dim(h);
            values[dim] += sign * weight * count.sqrt();
        }
        DenseVec::normalised(values)
    }
}

impl Embedder for ReaccSim {
    fn embed(&self, input: &str) -> DenseVec {
        self.embed_code(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUM: &str = "def process(self, data):\n    total = 0\n    for item in data:\n        total += item\n    return total\n";

    fn sim(a: &str, b: &str) -> f32 {
        let m = ReaccSim::new();
        m.embed_code(a).cosine(&m.embed_code(b))
    }

    #[test]
    fn exact_clone_is_perfect() {
        assert!((sim(SUM, SUM) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn near_clone_scores_high() {
        // Whitespace/comment changes do not affect the token stream.
        let reformatted = "def process(self, data):\n    # sum everything\n    total = 0\n    for item in data:\n            total += item\n    return total\n";
        assert!(sim(SUM, reformatted) > 0.99);
    }

    #[test]
    fn renaming_hurts_badly() {
        // The documented ReACC weakness: renamed variables break the exact
        // n-grams.
        let renamed = SUM.replace("total", "acc").replace("item", "x");
        let s = sim(SUM, &renamed);
        assert!(s < 0.6, "renamed similarity should collapse: {s}");
    }

    #[test]
    fn truncation_hurts_superlinearly() {
        let half = pyparse::drop_suffix_fraction(SUM, 0.5);
        let s_half = sim(SUM, &half);
        let ninety = pyparse::drop_suffix_fraction(SUM, 0.9);
        let s_ninety = sim(SUM, &ninety);
        assert!(s_half < 0.9, "half {s_half}");
        assert!(s_ninety < s_half, "ninety {s_ninety} < half {s_half}");
    }

    #[test]
    fn unrelated_code_scores_low() {
        let other = "class Reader:\n    def run(self, path):\n        with open(path) as fh:\n            return fh.read()\n";
        let s = sim(SUM, other);
        assert!(s < 0.35, "{s}");
    }

    #[test]
    fn empty_input() {
        let m = ReaccSim::new();
        assert!(m.embed_code("").is_zero());
        assert!(m.embed_code("# only a comment\n").is_zero());
    }

    #[test]
    fn deterministic() {
        let m = ReaccSim::new();
        assert_eq!(m.embed_code(SUM), m.embed_code(SUM));
    }

    #[test]
    fn operators_excluded_from_ngrams() {
        // `a+b` vs `a-b`: identifiers identical, operators differ — ReACC
        // substitute sees them as near-identical (it models token recall,
        // not semantics).
        let s = sim("x = a + b\n", "x = a - b\n");
        assert!(s > 0.95, "{s}");
    }
}
