//! `UniXcoderSim` — the text-embedding substitute for UniXcoder (paper
//! §V-B).
//!
//! Laminar's text-to-code search embeds PE/workflow *descriptions* and user
//! queries into a shared space and ranks by cosine similarity. The
//! substitute is a hashed bag-of-subwords model:
//!
//! * unigram tokens (stopworded, identifier-split) — the semantic core;
//! * token bigrams — a little compositionality ("detect anomalies" ≠
//!   "anomalies detected elsewhere");
//! * character 3-grams of each token — robustness to morphology
//!   ("detection" vs "detect", "normalizes" vs "normalize").
//!
//! Counts are square-root damped (a token appearing 9× counts 3×) so long
//! descriptions do not drown short ones, then signed-hashed into 256 dims
//! and L2-normalised.

use crate::dense::{fnv1a, hash_to_dim, DenseVec, DIM};
use crate::tokenize::text_tokens;
use crate::Embedder;
use std::collections::HashMap;

/// Relative weights of the three feature families.
const W_UNIGRAM: f32 = 1.0;
const W_BIGRAM: f32 = 0.6;
const W_CHAR3: f32 = 0.25;

/// Deterministic text embedder. Stateless and `Copy` — construct freely.
#[derive(Debug, Default, Clone, Copy)]
pub struct UniXcoderSim;

impl UniXcoderSim {
    pub fn new() -> Self {
        UniXcoderSim
    }

    /// Embed a natural-language description or query.
    pub fn embed_text(&self, text: &str) -> DenseVec {
        let tokens = text_tokens(text);
        if tokens.is_empty() {
            return DenseVec::zero();
        }

        // Accumulate feature counts first so damping can apply per feature.
        let mut counts: HashMap<u64, (f32, f32)> = HashMap::new(); // hash -> (count, weight)
        let mut add = |key: String, weight: f32| {
            let h = fnv1a(key.as_bytes());
            let e = counts.entry(h).or_insert((0.0, weight));
            e.0 += 1.0;
        };

        for t in &tokens {
            add(format!("u:{t}"), W_UNIGRAM);
            let chars: Vec<char> = t.chars().collect();
            if chars.len() >= 3 {
                for w in chars.windows(3) {
                    add(format!("c:{}{}{}", w[0], w[1], w[2]), W_CHAR3);
                }
            }
        }
        for pair in tokens.windows(2) {
            add(format!("b:{}|{}", pair[0], pair[1]), W_BIGRAM);
        }

        let mut values = vec![0.0f32; DIM];
        for (h, (count, weight)) in counts {
            let (dim, sign) = hash_to_dim(h);
            values[dim] += sign * weight * count.sqrt();
        }
        DenseVec::normalised(values)
    }
}

impl Embedder for UniXcoderSim {
    fn embed(&self, input: &str) -> DenseVec {
        self.embed_text(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(a: &str, b: &str) -> f32 {
        let m = UniXcoderSim::new();
        m.embed_text(a).cosine(&m.embed_text(b))
    }

    #[test]
    fn deterministic() {
        let m = UniXcoderSim::new();
        assert_eq!(
            m.embed_text("detect anomalies"),
            m.embed_text("detect anomalies")
        );
    }

    #[test]
    fn identity_similarity_is_one() {
        assert!(
            (sim(
                "reads a file and returns lines",
                "reads a file and returns lines"
            ) - 1.0)
                .abs()
                < 1e-5
        );
    }

    #[test]
    fn empty_input_embeds_to_zero() {
        let m = UniXcoderSim::new();
        assert!(m.embed_text("").is_zero());
        assert!(m.embed_text("   the a of ").is_zero());
    }

    #[test]
    fn related_beats_unrelated() {
        // Paper Fig. 8: "a pe that is able to detect anomalies" ranks the
        // anomaly-detection PE far above unrelated PEs.
        let query = "a pe that is able to detect anomalies";
        let anomaly = "Anomaly detection PE flags values that deviate from the mean";
        let prime = "checks whether a given number is prime and returns it";
        assert!(
            sim(query, anomaly) > sim(query, prime) + 0.1,
            "anomaly {} prime {}",
            sim(query, anomaly),
            sim(query, prime)
        );
    }

    #[test]
    fn morphology_tolerance_via_char_ngrams() {
        let s_exact = sim(
            "normalize temperature records",
            "normalize temperature records",
        );
        let s_morph = sim(
            "normalizes the temperatures of records",
            "normalize temperature records",
        );
        let s_unrel = sim("parse json configuration", "normalize temperature records");
        assert!(s_morph > s_unrel, "morph {s_morph} unrel {s_unrel}");
        assert!(s_exact > s_morph);
    }

    #[test]
    fn word_order_matters_slightly() {
        let a = sim("stream data to redis", "stream data to redis");
        let b = sim("redis to data stream", "stream data to redis");
        assert!(b < a);
        assert!(b > 0.5, "bag-of-words core keeps them close: {b}");
    }

    #[test]
    fn identifier_queries_match_descriptions() {
        // A camelCase class name in the query should match its split form.
        let s = sim("AnomalyDetectionPE", "anomaly detection pe");
        assert!(s > 0.5, "{s}");
    }

    #[test]
    fn length_damping() {
        // A short exact description should not lose badly to a long
        // description that repeats the keywords many times.
        let query = "count words in a text";
        let short = "counts the words in a text";
        let spam = "words words words words words words words counts counts counts counts text text text text";
        assert!(
            sim(query, short) > sim(query, spam),
            "short {} spam {}",
            sim(query, short),
            sim(query, spam)
        );
    }
}
