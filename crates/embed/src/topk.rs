//! Bounded top-k selection.
//!
//! Ranking a corpus used to mean scoring every entry, materialising a
//! hit per entry and fully sorting the lot — O(n log n) time and O(n)
//! allocation per query even though the server immediately truncates to
//! its `top_n`. [`TopK`] replaces that with a size-k min-heap: O(n log k)
//! time, O(k) memory, and — because the comparator is a *total* order
//! over `(score, key)` — a result that is bit-identical to the prefix of
//! the full-sort ranking, ties included, no matter how the corpus was
//! partitioned across threads.
//!
//! The ordering is score-descending with ascending `key` as the
//! deterministic tie-break (the same rule the old full-sort used). Scores
//! are compared with [`f32::total_cmp`] so the order is total even for
//! degenerate inputs.

use std::collections::BinaryHeap;

/// One selected row: its position in the scanned corpus, its stable key
/// (the entry id — the tie-break), and its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredRow {
    pub row: usize,
    pub key: u64,
    pub score: f32,
}

/// `true` when `(score_a, key_a)` ranks strictly before `(score_b,
/// key_b)`: higher score first, then smaller key.
#[inline]
pub fn ranks_before(score_a: f32, key_a: u64, score_b: f32, key_b: u64) -> bool {
    match score_a.total_cmp(&score_b) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => key_a < key_b,
    }
}

/// Heap item ordered so the heap's maximum is the *worst-ranked* entry,
/// making `BinaryHeap` a min-heap over the ranking order.
#[derive(Debug, Clone, Copy)]
struct Worst(ScoredRow);

impl PartialEq for Worst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Worst {}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Greater = ranks later: lower score, then larger key.
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then(self.0.key.cmp(&other.0.key))
    }
}

/// A bounded best-k accumulator over `(score, key, row)` triples.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Worst>,
}

impl TopK {
    pub fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.min(4096).saturating_add(1)),
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offer one scored row; keeps it only if it ranks within the best k.
    #[inline]
    pub fn push(&mut self, score: f32, key: u64, row: usize) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Worst(ScoredRow { row, key, score }));
            return;
        }
        let worst = self.heap.peek().expect("non-empty at capacity").0;
        if ranks_before(score, key, worst.score, worst.key) {
            self.heap.pop();
            self.heap.push(Worst(ScoredRow { row, key, score }));
        }
    }

    /// Merge two accumulators (the rayon `reduce` step). Order-insensitive:
    /// the total comparator makes the survivors independent of merge order.
    pub fn merge(mut self, other: TopK) -> TopK {
        for Worst(r) in other.heap {
            self.push(r.score, r.key, r.row);
        }
        self
    }

    /// Consume into a best-first vector (the full-sort ranking's prefix).
    pub fn into_sorted(self) -> Vec<ScoredRow> {
        let mut out: Vec<ScoredRow> = self.heap.into_iter().map(|w| w.0).collect();
        out.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.key.cmp(&b.key)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_topk(items: &[(f32, u64)], k: usize) -> Vec<(f32, u64)> {
        let mut all: Vec<(f32, u64)> = items.to_vec();
        all.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    fn run_topk(items: &[(f32, u64)], k: usize) -> Vec<(f32, u64)> {
        let mut t = TopK::new(k);
        for (row, &(s, id)) in items.iter().enumerate() {
            t.push(s, id, row);
        }
        t.into_sorted()
            .into_iter()
            .map(|r| (r.score, r.key))
            .collect()
    }

    #[test]
    fn equals_full_sort_prefix_with_ties() {
        let items: Vec<(f32, u64)> = (0..200u64)
            .map(|i| (((i * 7) % 13) as f32 / 13.0, i))
            .collect();
        for k in [0, 1, 3, 13, 57, 200, 500] {
            assert_eq!(run_topk(&items, k), naive_topk(&items, k), "k={k}");
        }
    }

    #[test]
    fn merge_is_order_insensitive() {
        let items: Vec<(f32, u64)> = (0..100u64).map(|i| ((i % 10) as f32, i)).collect();
        let (a, b) = items.split_at(37);
        let mut ta = TopK::new(8);
        for (row, &(s, id)) in a.iter().enumerate() {
            ta.push(s, id, row);
        }
        let mut tb = TopK::new(8);
        for (row, &(s, id)) in b.iter().enumerate() {
            tb.push(s, id, 37 + row);
        }
        let merged: Vec<(f32, u64)> = ta
            .merge(tb)
            .into_sorted()
            .into_iter()
            .map(|r| (r.score, r.key))
            .collect();
        assert_eq!(merged, naive_topk(&items, 8));
    }

    #[test]
    fn zero_k_keeps_nothing() {
        let mut t = TopK::new(0);
        t.push(1.0, 1, 0);
        assert!(t.is_empty());
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn rows_travel_with_hits() {
        let mut t = TopK::new(2);
        t.push(0.5, 10, 3);
        t.push(0.9, 11, 7);
        t.push(0.1, 12, 9);
        let rows: Vec<usize> = t.into_sorted().iter().map(|r| r.row).collect();
        assert_eq!(rows, vec![7, 3]);
    }
}
