//! `embed` — deterministic substitutes for the deep-learning models used by
//! Laminar 2.0 (paper §II-C).
//!
//! The paper relies on three pretrained transformers, none of which can run
//! in a pure-Rust offline build:
//!
//! | Paper model | Role | Substitute |
//! |---|---|---|
//! | CodeT5 | generate PE/workflow descriptions (§IV-C) | [`codet5::CodeT5Sim`] — extractive summariser over the parse tree |
//! | UniXcoder | embed descriptions & queries for text-to-code search (§V-B) | [`unixcoder::UniXcoderSim`] — 256-d hashed bag-of-subwords embedder |
//! | ReACC-py-retriever | code-to-code clone retrieval (§VI) | [`reacc::ReaccSim`] — order-sensitive exact-token n-gram embedder |
//!
//! The substitutes preserve the *behavioural profile* the evaluation
//! depends on: UniXcoderSim retrieves semantically-related descriptions
//! imperfectly (F1 in the 0.6 band); ReaccSim excels at (near-)clone
//! retrieval but collapses on partial or renamed code, which is exactly the
//! weakness Figures 12–13 contrast against Aroma's structural search.
//!
//! All models are deterministic: the same input always embeds identically,
//! with no global state.

pub mod codet5;
pub mod dense;
pub mod quant;
pub mod reacc;
pub mod tokenize;
pub mod topk;
pub mod unixcoder;

pub use codet5::{CodeT5Sim, DescriptionContext};
pub use dense::{batch_rank, dot, slab_scan_above, slab_topk, DenseVec, RankedHit, DIM};
pub use quant::{
    dot_i8, quantize_into, quantize_row, quantized_topk, two_phase_topk, QuantizedVec,
    TwoPhaseStats,
};
pub use reacc::ReaccSim;
pub use tokenize::{split_identifier, subword_tokens, text_tokens};
pub use topk::{ScoredRow, TopK};
pub use unixcoder::UniXcoderSim;

/// Common interface implemented by both embedding substitutes.
pub trait Embedder {
    /// Embed an input into the shared 256-d space. Must be deterministic.
    fn embed(&self, input: &str) -> DenseVec;
}
