//! `CodeT5Sim` — the description-generation substitute for CodeT5 (paper
//! §IV-C, §VII-B).
//!
//! Laminar auto-generates a natural-language description for every PE and
//! workflow that lacks one; descriptions drive both literal and semantic
//! search, so their quality matters (Fig. 10). The substitute is an
//! *extractive* summariser over the parse tree. Crucially it reproduces the
//! paper's experimental contrast:
//!
//! * [`DescriptionContext::ProcessMethodOnly`] (Laminar 1.0) sees only the
//!   `_process` method body — no class name, no class docstring, no other
//!   methods — and therefore produces terse, context-poor descriptions;
//! * [`DescriptionContext::FullClass`] (Laminar 2.0) sees the whole class
//!   and produces strictly richer descriptions.

use crate::tokenize::split_identifier;
use pyparse::{NodeId, ParseTree, SyntaxKind, TokKind};

/// How much of the PE the generator is allowed to see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescriptionContext {
    /// Laminar 1.0 behaviour: the `_process()` method only.
    ProcessMethodOnly,
    /// Laminar 2.0 behaviour: the entire class definition.
    FullClass,
}

/// Deterministic extractive description generator.
#[derive(Debug, Clone, Copy)]
pub struct CodeT5Sim {
    pub context: DescriptionContext,
}

impl Default for CodeT5Sim {
    fn default() -> Self {
        CodeT5Sim {
            context: DescriptionContext::FullClass,
        }
    }
}

/// Facts extracted from the visible portion of the code.
#[derive(Debug, Default)]
struct Facts {
    class_name: Option<String>,
    base: Option<String>,
    docstrings: Vec<String>,
    methods: Vec<String>,
    calls: Vec<String>,
    has_loop: bool,
    has_condition: bool,
    has_return: bool,
    has_yield: bool,
}

impl CodeT5Sim {
    pub fn new(context: DescriptionContext) -> Self {
        CodeT5Sim { context }
    }

    /// Generate a description for a PE class (or bare function) source.
    pub fn describe_pe(&self, code: &str) -> String {
        let tree = pyparse::parse(code);
        let facts = match self.context {
            DescriptionContext::FullClass => collect_facts(&tree, tree.root),
            DescriptionContext::ProcessMethodOnly => {
                let proc = tree
                    .find_funcdef("_process")
                    .or_else(|| tree.find_funcdef("process"));
                match proc {
                    Some(f) => collect_facts(&tree, Some(f)),
                    None => collect_facts(&tree, tree.root),
                }
            }
        };
        render(&facts, self.context)
    }

    /// Generate a workflow description. The paper builds "a class named
    /// after the workflow including all PE functions as methods" — we do
    /// the equivalent by pooling the member PE descriptions.
    pub fn describe_workflow(&self, workflow_name: &str, pe_codes: &[&str]) -> String {
        let name_words = split_identifier(workflow_name).join(" ");
        let mut parts = vec![format!("Workflow {name_words}")];
        let mut member_bits = Vec::new();
        for code in pe_codes {
            let tree = pyparse::parse(code);
            let facts = collect_facts(&tree, tree.root);
            if let Some(cn) = &facts.class_name {
                let words = split_identifier(cn).join(" ");
                member_bits.push(words);
            }
        }
        if !member_bits.is_empty() {
            parts.push(format!("composed of {}", member_bits.join(", ")));
        }
        let mut s = parts.join(" ");
        s.push('.');
        s
    }
}

fn collect_facts(tree: &ParseTree, scope: Option<NodeId>) -> Facts {
    let mut facts = Facts::default();
    let Some(scope) = scope else {
        return facts;
    };
    walk(tree, scope, &mut facts, true);
    facts
}

fn walk(tree: &ParseTree, id: NodeId, facts: &mut Facts, top: bool) {
    match tree.kind(id) {
        Some(SyntaxKind::ClassDef) => {
            if facts.class_name.is_none() {
                facts.class_name = tree.def_name(id).map(str::to_string);
                // Base class: the first Argument name inside the class header.
                facts.base = class_base(tree, id);
            }
            if let Some(doc) = block_docstring(tree, id) {
                facts.docstrings.push(doc);
            }
        }
        Some(SyntaxKind::FuncDef) => {
            if let Some(name) = tree.def_name(id) {
                if !top && name != "__init__" {
                    facts.methods.push(name.to_string());
                }
            }
            if let Some(doc) = block_docstring(tree, id) {
                facts.docstrings.push(doc);
            }
        }
        Some(SyntaxKind::ForStmt) | Some(SyntaxKind::WhileStmt) | Some(SyntaxKind::CompFor) => {
            facts.has_loop = true;
        }
        Some(SyntaxKind::IfStmt) | Some(SyntaxKind::Ternary) => facts.has_condition = true,
        Some(SyntaxKind::ReturnStmt) => facts.has_return = true,
        Some(SyntaxKind::YieldExpr) | Some(SyntaxKind::YieldStmt) => facts.has_yield = true,
        Some(SyntaxKind::Call) => {
            if let Some(name) = call_target_name(tree, id) {
                if !facts.calls.contains(&name) && facts.calls.len() < 8 {
                    facts.calls.push(name);
                }
            }
        }
        _ => {}
    }
    for &c in &tree.node(id).children {
        walk(tree, c, facts, false);
    }
}

/// Dotted name of a call target: `random.randint(...)` → "random.randint".
fn call_target_name(tree: &ParseTree, call: NodeId) -> Option<String> {
    let target = *tree.node(call).children.first()?;
    let leaves = tree.leaves_under(target);
    let mut s = String::new();
    for t in leaves {
        match t.kind {
            TokKind::Name => {
                s.push_str(&t.text);
            }
            TokKind::Op if t.text == "." => s.push('.'),
            _ => return None, // complex target (subscript etc.) — skip
        }
    }
    // Filter dunder noise and bare `self`.
    if s.is_empty() || s.starts_with("self.__") || s.contains("__init__") || s == "self" {
        return None;
    }
    Some(s.trim_start_matches("self.").to_string())
}

/// First statement of a class/function body when it is a string literal.
fn block_docstring(tree: &ParseTree, def: NodeId) -> Option<String> {
    let block = tree
        .node(def)
        .children
        .iter()
        .copied()
        .find(|&c| tree.kind(c) == Some(SyntaxKind::Block))?;
    let first = *tree.node(block).children.first()?;
    let leaves = tree.leaves_under(first);
    if leaves.len() == 1 && leaves[0].kind == TokKind::Str {
        Some(clean_string_literal(&leaves[0].text))
    } else {
        None
    }
}

fn class_base(tree: &ParseTree, class: NodeId) -> Option<String> {
    // Children: `class` Name `(` … `)` `:` Block — the first Argument under
    // the classdef holds the base.
    for &c in &tree.node(class).children {
        if tree.kind(c) == Some(SyntaxKind::Argument) {
            let leaves = tree.leaves_under(c);
            if let Some(t) = leaves.first() {
                if t.kind == TokKind::Name {
                    return Some(t.text.clone());
                }
            }
        }
    }
    None
}

fn clean_string_literal(lit: &str) -> String {
    lit.trim_start_matches(['r', 'b', 'f', 'u', 'R', 'B', 'F', 'U'])
        .trim_matches(['"', '\''])
        .trim()
        .to_string()
}

/// Map dispel4py base classes to phrases.
fn base_phrase(base: &str) -> Option<&'static str> {
    match base {
        "IterativePE" => {
            Some("an iterative processing element consuming one input and producing one output")
        }
        "ProducerPE" => Some("a producer processing element that generates data"),
        "ConsumerPE" => Some("a consumer processing element that absorbs data"),
        "GenericPE" => Some("a generic processing element"),
        _ => None,
    }
}

fn render(facts: &Facts, context: DescriptionContext) -> String {
    let mut sentences: Vec<String> = Vec::new();

    // CodeT5 produces one focused intent sentence; when the code carries a
    // docstring, the model's output tracks it closely and skips structural
    // boilerplate. Mirror that: docstring-bearing code gets a compact
    // name + docstring + API summary.
    if !facts.docstrings.is_empty() {
        if let Some(name) = &facts.class_name {
            let words = split_identifier(name).join(" ");
            // The class name carries the PE's concept; CodeT5's generations
            // lead with it and restate it ("WordCounter — counts words…"),
            // which is precisely the §IV-C full-class-context advantage.
            sentences.push(format!("{words}: implements {words}"));
        }
        for doc in facts.docstrings.iter().take(2) {
            if !doc.is_empty() {
                sentences.push(doc.clone());
            }
        }
        if !facts.calls.is_empty() {
            let mut words: Vec<String> = Vec::new();
            for c in facts.calls.iter().take(5) {
                for part in c.split('.') {
                    for w in split_identifier(part) {
                        if !words.contains(&w) {
                            words.push(w);
                        }
                    }
                }
            }
            sentences.push(format!("uses {}", words.join(", ")));
        }
        let mut s = sentences.join(". ");
        s.push('.');
        let mut chars = s.chars();
        return match chars.next() {
            Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
            None => s,
        };
    }

    if let Some(name) = &facts.class_name {
        let words = split_identifier(name).join(" ");
        match facts.base.as_deref().and_then(base_phrase) {
            Some(bp) => sentences.push(format!("{words}: {bp}")),
            None => match &facts.base {
                Some(b) => sentences.push(format!("{words} class (extends {b})")),
                None => sentences.push(format!("{words} class")),
            },
        }
    }

    for doc in facts.docstrings.iter().take(2) {
        if !doc.is_empty() {
            sentences.push(doc.clone());
        }
    }

    if context == DescriptionContext::FullClass && !facts.methods.is_empty() {
        sentences.push(format!("defines {}", facts.methods.join(", ")));
    }

    // Behavioural clause from the body shape.
    let mut behaviour = Vec::new();
    if facts.has_loop {
        behaviour.push("iterates over its input");
    }
    if facts.has_condition {
        behaviour.push("applies a condition");
    }
    if facts.has_yield {
        behaviour.push("yields a stream of results");
    } else if facts.has_return {
        behaviour.push("returns a result");
    }
    if !behaviour.is_empty() {
        sentences.push(behaviour.join(" and "));
    }

    if !facts.calls.is_empty() {
        let mut words: Vec<String> = Vec::new();
        for c in facts.calls.iter().take(5) {
            for part in c.split('.') {
                for w in split_identifier(part) {
                    if !words.contains(&w) {
                        words.push(w);
                    }
                }
            }
        }
        sentences.push(format!("uses {}", words.join(", ")));
    }

    if sentences.is_empty() {
        return "Python code snippet.".to_string();
    }
    let mut s = sentences.join(". ");
    s.push('.');
    // Capitalise the first letter for presentation parity with CodeT5.
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ISPRIME: &str = "\
class IsPrime(IterativePE):
    \"\"\"Checks whether a given number is prime and returns the number if it is.\"\"\"
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, num):
        if all(num % i != 0 for i in range(2, num)):
            return num
";

    #[test]
    fn full_class_description_is_rich() {
        let gen = CodeT5Sim::new(DescriptionContext::FullClass);
        let d = gen.describe_pe(ISPRIME);
        // Docstring-bearing code: compact name + docstring + API summary.
        assert!(d.contains("Is prime") || d.contains("is prime"), "{d}");
        assert!(d.contains("Checks whether a given number is prime"), "{d}");
        assert!(d.contains("uses"), "{d}");
    }

    #[test]
    fn docstring_free_class_gets_structural_description() {
        let gen = CodeT5Sim::new(DescriptionContext::FullClass);
        let d = gen.describe_pe(
            "class Gen(IterativePE):\n    def _process(self, xs):\n        for x in xs:\n            yield x\n",
        );
        assert!(d.contains("iterative processing element"), "{d}");
    }

    #[test]
    fn process_only_description_is_poor() {
        // Fig. 10 contrast: Laminar 1.0 sees only `_process`, losing the
        // class name and docstring.
        let gen = CodeT5Sim::new(DescriptionContext::ProcessMethodOnly);
        let d = gen.describe_pe(ISPRIME);
        assert!(!d.contains("Is prime"), "{d}");
        assert!(!d.contains("Checks whether"), "{d}");
        // It still sees the body shape.
        assert!(
            d.contains("condition") || d.contains("range") || d.contains("all"),
            "{d}"
        );
    }

    #[test]
    fn full_class_strictly_longer() {
        let full = CodeT5Sim::new(DescriptionContext::FullClass).describe_pe(ISPRIME);
        let proc = CodeT5Sim::new(DescriptionContext::ProcessMethodOnly).describe_pe(ISPRIME);
        assert!(full.len() > proc.len(), "full {full:?} vs proc {proc:?}");
    }

    #[test]
    fn base_classes_mapped() {
        let gen = CodeT5Sim::default();
        let d = gen.describe_pe(
            "class Gen(ProducerPE):\n    def _process(self, inputs):\n        return 1\n",
        );
        assert!(d.contains("producer"), "{d}");
        let d2 = gen
            .describe_pe("class Sink(ConsumerPE):\n    def _process(self, x):\n        print(x)\n");
        assert!(d2.contains("consumer"), "{d2}");
    }

    #[test]
    fn api_calls_surface() {
        let gen = CodeT5Sim::default();
        let d = gen.describe_pe("class R(ProducerPE):\n    def _process(self, i):\n        return random.randint(1, 1000)\n");
        assert!(d.contains("random"), "{d}");
        assert!(d.contains("randint"), "{d}");
    }

    #[test]
    fn unknown_base_and_bare_function() {
        let gen = CodeT5Sim::default();
        let d = gen.describe_pe("class X(SomethingElse):\n    def f(self):\n        pass\n");
        assert!(d.contains("extends SomethingElse"), "{d}");
        let d2 = gen.describe_pe("def lonely(x):\n    return x\n");
        assert!(!d2.is_empty());
    }

    #[test]
    fn empty_and_garbage_input() {
        let gen = CodeT5Sim::default();
        assert_eq!(gen.describe_pe(""), "Python code snippet.");
        let d = gen.describe_pe(")))((");
        assert!(!d.is_empty());
    }

    #[test]
    fn deterministic() {
        let gen = CodeT5Sim::default();
        assert_eq!(gen.describe_pe(ISPRIME), gen.describe_pe(ISPRIME));
    }

    #[test]
    fn workflow_description_pools_members() {
        let gen = CodeT5Sim::default();
        let producer = "class NumberProducer(ProducerPE):\n    def _process(self, i):\n        return random.randint(1, 1000)\n";
        let d = gen.describe_workflow("isprime_wf", &[producer, ISPRIME]);
        assert!(d.contains("isprime wf") || d.contains("isprime"), "{d}");
        assert!(
            d.contains("Number producer") || d.contains("number producer"),
            "{d}"
        );
        assert!(d.to_lowercase().contains("is prime"), "{d}");
    }

    #[test]
    fn yield_detection() {
        let gen = CodeT5Sim::default();
        let d = gen.describe_pe("class S(GenericPE):\n    def _process(self, xs):\n        for x in xs:\n            yield x * 2\n");
        assert!(d.contains("yields"), "{d}");
        assert!(d.contains("iterates"), "{d}");
    }
}
