//! Dense embedding vectors and batch ranking.
//!
//! Both model substitutes produce L2-normalised 256-dimensional vectors via
//! signed feature hashing (the classic "hashing trick"): each textual
//! feature hashes to a dimension and a sign, contributions accumulate, and
//! the result is normalised. Cosine similarity between normalised vectors
//! is a plain dot product.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::topk::{ScoredRow, TopK};

/// Embedding dimensionality (fixed across the workspace so embeddings can
/// be stored in the registry and compared later).
pub const DIM: usize = 256;

/// Row count above which slab scans partition across rayon workers.
pub const PAR_SCAN_THRESHOLD: usize = 4096;

/// Fused dot product, unrolled into eight independent accumulator lanes so
/// the compiler can keep the reduction in vector registers (the serial
/// `zip().map().sum()` form creates a loop-carried dependency on a single
/// scalar accumulator, which blocks auto-vectorisation of the adds).
///
/// Inputs of unequal length score only the common prefix; `DIM`-strided
/// slab rows always hit the exact-chunk fast path.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut lanes = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..8 {
            lanes[i] += xa[i] * xb[i];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    let mut sum = tail;
    for lane in lanes {
        sum += lane;
    }
    sum
}

/// An L2-normalised dense vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseVec {
    pub values: Vec<f32>,
}

impl DenseVec {
    /// The zero vector (embedding of empty input).
    pub fn zero() -> Self {
        DenseVec {
            values: vec![0.0; DIM],
        }
    }

    /// Build from raw accumulated values, L2-normalising in place.
    pub fn normalised(mut values: Vec<f32>) -> Self {
        debug_assert_eq!(values.len(), DIM);
        let norm = values.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in &mut values {
                *v /= norm;
            }
        }
        DenseVec { values }
    }

    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0.0)
    }

    /// Cosine similarity (dot product — inputs are normalised).
    pub fn cosine(&self, other: &DenseVec) -> f32 {
        dot(&self.values, &other.values)
    }

    /// Serialise for registry storage (JSON array, as the paper's
    /// `descriptionEmbedding` column).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.values).expect("DenseVec serialisation cannot fail")
    }

    pub fn from_json(s: &str) -> Result<DenseVec, String> {
        let values: Vec<f32> = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if values.len() != DIM {
            return Err(format!("expected {DIM} dims, got {}", values.len()));
        }
        Ok(DenseVec { values })
    }
}

/// One ranked retrieval hit.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedHit {
    pub index: usize,
    pub score: f32,
}

/// Rank all `corpus` vectors against `query`, best first; deterministic
/// tie-break by index. Parallelises for large corpora.
pub fn batch_rank(query: &DenseVec, corpus: &[DenseVec]) -> Vec<RankedHit> {
    let score = |(i, v): (usize, &DenseVec)| RankedHit {
        index: i,
        score: query.cosine(v),
    };
    let mut hits: Vec<RankedHit> = if corpus.len() >= 1024 {
        corpus.par_iter().enumerate().map(score).collect()
    } else {
        corpus.iter().enumerate().map(score).collect()
    };
    hits.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    hits
}

/// Serial top-k scan over a `DIM`-strided slab. `keys[row]` supplies the
/// stable tie-break key; rows where `accept(row)` is false are skipped.
pub fn slab_topk_serial<F>(
    query: &[f32],
    slab: &[f32],
    keys: &[u64],
    k: usize,
    accept: F,
) -> Vec<ScoredRow>
where
    F: Fn(usize) -> bool,
{
    debug_assert_eq!(slab.len(), keys.len() * DIM);
    let mut top = TopK::new(k);
    for (row, chunk) in slab.chunks_exact(DIM).enumerate() {
        if accept(row) {
            top.push(dot(query, chunk), keys[row], row);
        }
    }
    top.into_sorted()
}

/// Rayon-partitioned top-k scan: each worker folds a bounded [`TopK`] over
/// its partition (O(threads · k) transient memory, never O(n)) and the
/// accumulators merge pairwise. The total `(score, key)` order makes the
/// result identical to the serial scan regardless of partitioning.
pub fn slab_topk_parallel<F>(
    query: &[f32],
    slab: &[f32],
    keys: &[u64],
    k: usize,
    accept: F,
) -> Vec<ScoredRow>
where
    F: Fn(usize) -> bool + Sync,
{
    debug_assert_eq!(slab.len(), keys.len() * DIM);
    slab.par_chunks_exact(DIM)
        .enumerate()
        .fold(
            || TopK::new(k),
            |mut top, (row, chunk)| {
                if accept(row) {
                    top.push(dot(query, chunk), keys[row], row);
                }
                top
            },
        )
        .reduce(|| TopK::new(k), TopK::merge)
        .into_sorted()
}

/// Top-k scan over a slab, picking the parallel path for large corpora.
pub fn slab_topk<F>(
    query: &[f32],
    slab: &[f32],
    keys: &[u64],
    k: usize,
    accept: F,
) -> Vec<ScoredRow>
where
    F: Fn(usize) -> bool + Sync,
{
    if keys.len() >= PAR_SCAN_THRESHOLD {
        slab_topk_parallel(query, slab, keys, k, accept)
    } else {
        slab_topk_serial(query, slab, keys, k, accept)
    }
}

/// Threshold scan shared by every "all hits above `min_score`" ranking
/// path: score rows `0..n` with the caller's closure (dense slab stride,
/// sparse feature overlap — the helper doesn't care), keep rows where
/// `accept(row)` holds and `score(row) ≥ min_score`, and return them
/// best-first under the total `(score desc, key asc)` order. Partitions
/// across rayon workers past [`PAR_SCAN_THRESHOLD`]; the sort key is
/// unique per row, so the result is identical either way.
pub fn slab_scan_above<S, F>(
    n: usize,
    score: S,
    accept: F,
    keys: &[u64],
    min_score: f32,
) -> Vec<ScoredRow>
where
    S: Fn(usize) -> f32 + Sync,
    F: Fn(usize) -> bool + Sync,
{
    debug_assert!(keys.len() >= n);
    let score_row = |row: usize| {
        if !accept(row) {
            return None;
        }
        let s = score(row);
        (s >= min_score).then_some(ScoredRow {
            row,
            key: keys[row],
            score: s,
        })
    };
    let mut rows: Vec<ScoredRow> = if n >= PAR_SCAN_THRESHOLD {
        (0..n).into_par_iter().filter_map(score_row).collect()
    } else {
        (0..n).filter_map(score_row).collect()
    };
    rows.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.key.cmp(&b.key)));
    rows
}

/// Signed hashing: fold a feature hash into (dimension, sign).
#[inline]
pub fn hash_to_dim(h: u64) -> (usize, f32) {
    let dim = (h % DIM as u64) as usize;
    let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
    (dim, sign)
}

/// FNV-1a, shared with the sparse SPT path for consistency.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pairs: &[(usize, f32)]) -> DenseVec {
        let mut values = vec![0.0; DIM];
        for &(i, v) in pairs {
            values[i] = v;
        }
        DenseVec::normalised(values)
    }

    #[test]
    fn normalisation() {
        let v = vec_of(&[(0, 3.0), (1, 4.0)]);
        let norm: f32 = v.values.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_stays_zero() {
        let z = DenseVec::zero();
        assert!(z.is_zero());
        assert_eq!(z.cosine(&z), 0.0);
        let n = DenseVec::normalised(vec![0.0; DIM]);
        assert!(n.is_zero());
    }

    #[test]
    fn cosine_identity_and_orthogonality() {
        let a = vec_of(&[(0, 1.0)]);
        let b = vec_of(&[(1, 1.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn batch_rank_orders_and_breaks_ties() {
        let q = vec_of(&[(0, 1.0)]);
        let corpus = vec![
            vec_of(&[(1, 1.0)]),           // orthogonal
            vec_of(&[(0, 1.0)]),           // identical
            vec_of(&[(0, 1.0), (1, 1.0)]), // partial
            vec_of(&[(1, 1.0)]),           // orthogonal (tie with 0)
        ];
        let hits = batch_rank(&q, &corpus);
        assert_eq!(hits[0].index, 1);
        assert_eq!(hits[1].index, 2);
        assert_eq!(hits[2].index, 0, "tie broken by index");
        assert_eq!(hits[3].index, 3);
    }

    #[test]
    fn json_roundtrip_and_validation() {
        let v = vec_of(&[(3, 1.0), (7, -2.0)]);
        let back = DenseVec::from_json(&v.to_json()).unwrap();
        assert_eq!(v, back);
        assert!(DenseVec::from_json("[1.0, 2.0]").is_err(), "wrong dim");
        assert!(DenseVec::from_json("nope").is_err());
    }

    #[test]
    fn hash_to_dim_in_range_and_signed() {
        let mut signs = [false, false];
        for s in ["a", "b", "c", "dd", "ee", "ff", "gg"] {
            let (d, sign) = hash_to_dim(fnv1a(s.as_bytes()));
            assert!(d < DIM);
            assert!(sign == 1.0 || sign == -1.0);
            signs[(sign < 0.0) as usize] = true;
        }
        assert!(signs[0] && signs[1], "both signs occur");
    }

    #[test]
    fn fused_dot_matches_naive() {
        let a: Vec<f32> = (0..DIM).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..DIM).map(|i| (i as f32 * 0.11).cos()).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-3);
        // Unequal lengths score the common prefix only.
        assert!(
            (dot(&a[..19], &b) - a[..19].iter().zip(&b).map(|(x, y)| x * y).sum::<f32>()).abs()
                < 1e-4
        );
        assert_eq!(dot(&[], &b), 0.0);
    }

    #[test]
    fn slab_topk_matches_full_sort_prefix() {
        let n = 300;
        let rows: Vec<DenseVec> = (0..n)
            .map(|i| vec_of(&[(i % DIM, 1.0), ((i * 3) % DIM, 0.5)]))
            .collect();
        let mut slab = Vec::with_capacity(n * DIM);
        for r in &rows {
            slab.extend_from_slice(&r.values);
        }
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 2 + 1).collect();
        let q = vec_of(&[(0, 1.0), (3, 0.7)]);

        let mut full: Vec<(f32, u64)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (q.cosine(r), keys[i]))
            .collect();
        full.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        for k in [1, 5, 17, n, n + 10] {
            let got: Vec<(f32, u64)> = slab_topk_serial(&q.values, &slab, &keys, k, |_| true)
                .into_iter()
                .map(|h| (h.score, h.key))
                .collect();
            let want: Vec<(f32, u64)> = full.iter().take(k).copied().collect();
            assert_eq!(got, want, "k={k}");
            let par: Vec<(f32, u64)> = slab_topk_parallel(&q.values, &slab, &keys, k, |_| true)
                .into_iter()
                .map(|h| (h.score, h.key))
                .collect();
            assert_eq!(par, want, "parallel k={k}");
        }

        // Filtering: only even rows.
        let got: Vec<usize> = slab_topk(&q.values, &slab, &keys, n, |row| row % 2 == 0)
            .into_iter()
            .map(|h| h.row)
            .collect();
        assert_eq!(got.len(), n / 2);
        assert!(got.iter().all(|r| r % 2 == 0));
    }

    #[test]
    fn slab_scan_above_filters_and_sorts() {
        let rows: Vec<f32> = vec![0.9, 0.1, 0.5, 0.9, 0.3];
        let keys: Vec<u64> = vec![10, 11, 12, 13, 14];
        let got = slab_scan_above(rows.len(), |r| rows[r], |r| r != 2, &keys, 0.25);
        let picks: Vec<(u64, f32)> = got.iter().map(|h| (h.key, h.score)).collect();
        // row 2 rejected by accept, row 1 below threshold; tie 0/3 breaks
        // by ascending key.
        assert_eq!(picks, vec![(10, 0.9), (13, 0.9), (14, 0.3)]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        let q = vec_of(&[(0, 1.0), (5, 0.5)]);
        let corpus: Vec<DenseVec> = (0..1500)
            .map(|i| vec_of(&[(i % DIM, 1.0), ((i * 7) % DIM, 0.3)]))
            .collect();
        let par = batch_rank(&q, &corpus);
        let ser: Vec<RankedHit> = {
            let mut hits: Vec<RankedHit> = corpus
                .iter()
                .enumerate()
                .map(|(i, v)| RankedHit {
                    index: i,
                    score: q.cosine(v),
                })
                .collect();
            hits.sort_unstable_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap()
                    .then(a.index.cmp(&b.index))
            });
            hits
        };
        assert_eq!(par, ser);
    }
}
