//! Dense embedding vectors and batch ranking.
//!
//! Both model substitutes produce L2-normalised 256-dimensional vectors via
//! signed feature hashing (the classic "hashing trick"): each textual
//! feature hashes to a dimension and a sign, contributions accumulate, and
//! the result is normalised. Cosine similarity between normalised vectors
//! is a plain dot product.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Embedding dimensionality (fixed across the workspace so embeddings can
/// be stored in the registry and compared later).
pub const DIM: usize = 256;

/// An L2-normalised dense vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseVec {
    pub values: Vec<f32>,
}

impl DenseVec {
    /// The zero vector (embedding of empty input).
    pub fn zero() -> Self {
        DenseVec {
            values: vec![0.0; DIM],
        }
    }

    /// Build from raw accumulated values, L2-normalising in place.
    pub fn normalised(mut values: Vec<f32>) -> Self {
        debug_assert_eq!(values.len(), DIM);
        let norm = values.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in &mut values {
                *v /= norm;
            }
        }
        DenseVec { values }
    }

    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0.0)
    }

    /// Cosine similarity (dot product — inputs are normalised).
    pub fn cosine(&self, other: &DenseVec) -> f32 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Serialise for registry storage (JSON array, as the paper's
    /// `descriptionEmbedding` column).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.values).expect("DenseVec serialisation cannot fail")
    }

    pub fn from_json(s: &str) -> Result<DenseVec, String> {
        let values: Vec<f32> = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if values.len() != DIM {
            return Err(format!("expected {DIM} dims, got {}", values.len()));
        }
        Ok(DenseVec { values })
    }
}

/// One ranked retrieval hit.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedHit {
    pub index: usize,
    pub score: f32,
}

/// Rank all `corpus` vectors against `query`, best first; deterministic
/// tie-break by index. Parallelises for large corpora.
pub fn batch_rank(query: &DenseVec, corpus: &[DenseVec]) -> Vec<RankedHit> {
    let score = |(i, v): (usize, &DenseVec)| RankedHit {
        index: i,
        score: query.cosine(v),
    };
    let mut hits: Vec<RankedHit> = if corpus.len() >= 1024 {
        corpus.par_iter().enumerate().map(score).collect()
    } else {
        corpus.iter().enumerate().map(score).collect()
    };
    hits.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    hits
}

/// Signed hashing: fold a feature hash into (dimension, sign).
#[inline]
pub fn hash_to_dim(h: u64) -> (usize, f32) {
    let dim = (h % DIM as u64) as usize;
    let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
    (dim, sign)
}

/// FNV-1a, shared with the sparse SPT path for consistency.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pairs: &[(usize, f32)]) -> DenseVec {
        let mut values = vec![0.0; DIM];
        for &(i, v) in pairs {
            values[i] = v;
        }
        DenseVec::normalised(values)
    }

    #[test]
    fn normalisation() {
        let v = vec_of(&[(0, 3.0), (1, 4.0)]);
        let norm: f32 = v.values.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_stays_zero() {
        let z = DenseVec::zero();
        assert!(z.is_zero());
        assert_eq!(z.cosine(&z), 0.0);
        let n = DenseVec::normalised(vec![0.0; DIM]);
        assert!(n.is_zero());
    }

    #[test]
    fn cosine_identity_and_orthogonality() {
        let a = vec_of(&[(0, 1.0)]);
        let b = vec_of(&[(1, 1.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn batch_rank_orders_and_breaks_ties() {
        let q = vec_of(&[(0, 1.0)]);
        let corpus = vec![
            vec_of(&[(1, 1.0)]),            // orthogonal
            vec_of(&[(0, 1.0)]),            // identical
            vec_of(&[(0, 1.0), (1, 1.0)]),  // partial
            vec_of(&[(1, 1.0)]),            // orthogonal (tie with 0)
        ];
        let hits = batch_rank(&q, &corpus);
        assert_eq!(hits[0].index, 1);
        assert_eq!(hits[1].index, 2);
        assert_eq!(hits[2].index, 0, "tie broken by index");
        assert_eq!(hits[3].index, 3);
    }

    #[test]
    fn json_roundtrip_and_validation() {
        let v = vec_of(&[(3, 1.0), (7, -2.0)]);
        let back = DenseVec::from_json(&v.to_json()).unwrap();
        assert_eq!(v, back);
        assert!(DenseVec::from_json("[1.0, 2.0]").is_err(), "wrong dim");
        assert!(DenseVec::from_json("nope").is_err());
    }

    #[test]
    fn hash_to_dim_in_range_and_signed() {
        let mut signs = [false, false];
        for s in ["a", "b", "c", "dd", "ee", "ff", "gg"] {
            let (d, sign) = hash_to_dim(fnv1a(s.as_bytes()));
            assert!(d < DIM);
            assert!(sign == 1.0 || sign == -1.0);
            signs[(sign < 0.0) as usize] = true;
        }
        assert!(signs[0] && signs[1], "both signs occur");
    }

    #[test]
    fn parallel_path_matches_serial() {
        let q = vec_of(&[(0, 1.0), (5, 0.5)]);
        let corpus: Vec<DenseVec> = (0..1500)
            .map(|i| vec_of(&[(i % DIM, 1.0), ((i * 7) % DIM, 0.3)]))
            .collect();
        let par = batch_rank(&q, &corpus);
        let ser: Vec<RankedHit> = {
            let mut hits: Vec<RankedHit> = corpus
                .iter()
                .enumerate()
                .map(|(i, v)| RankedHit { index: i, score: q.cosine(v) })
                .collect();
            hits.sort_unstable_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap()
                    .then(a.index.cmp(&b.index))
            });
            hits
        };
        assert_eq!(par, ser);
    }
}
