//! `laminar-core` — the Laminar 2.0 facade (paper §III, Fig. 4).
//!
//! One call deploys the full stack — registry, search indexes, resource
//! cache, execution engine with its container pool and workflow library —
//! and hands back connected clients:
//!
//! ```
//! use laminar_core::Laminar;
//!
//! let laminar = Laminar::deploy(Default::default());
//! let mut client = laminar.client();
//! client.register("rosa", "secret").unwrap();
//! let reg = client
//!     .register_workflow("isprime_wf", laminar_core::ISPRIME_WORKFLOW_SOURCE)
//!     .unwrap();
//! let output = client.run_multiprocess(reg.workflow.1, 10, 9).unwrap();
//! assert!(output.ok);
//! ```
//!
//! The facade is what the examples, the CLI binary, the integration tests
//! and the evaluation harnesses all build on.

use embed::DescriptionContext;
use laminar_client::{Cli, LaminarClient};
use laminar_execengine::{ExecutionEngine, PoolConfig, WorkflowLibrary};
use laminar_registry::{FaultHook, PersistOptions, Registry, SyncPolicy};
use laminar_server::{DeliveryMode, LaminarServer, ServerConfig, Transport};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

pub use laminar_client::{ClientError, HealthReport, RegisteredWorkflow, RetryPolicy, RunOutput};
pub use laminar_registry::{
    FaultKind, FaultMode, FaultSpec, IoFaultInjector, IoSite, RegistryError,
};
pub use laminar_server::{
    Clock, ConnOptions, Connection, ConnectionError, EmbeddingType, Ident, MetricsSnapshot,
    NetClientTransport, NetServer, NetServerConfig, SearchScope, SharedClock, SimClock,
    StorageStateWire, SystemClock,
};

/// Deployment configuration.
#[derive(Debug, Clone)]
pub struct LaminarConfig {
    /// Container pool size.
    pub max_containers: usize,
    /// Simulated container cold-start latency.
    pub cold_start: Duration,
    /// Pre-warmed containers.
    pub prewarmed: usize,
    /// Load the stock paper workflows into the engine library.
    pub stock_workflows: bool,
    /// Description-generation context (Laminar 2.0 default: full class).
    pub description_context: DescriptionContext,
    /// Server search tunables.
    pub server: ServerConfig,
    /// Registry data directory (`--data-dir`). `None` keeps the registry
    /// purely in memory, exactly as before persistence existed.
    pub data_dir: Option<PathBuf>,
    /// Compact the WAL into a snapshot every this many records
    /// (`--snapshot-every`; 0 disables auto-compaction).
    pub snapshot_every: u64,
    /// fsync the WAL on every append (`--wal-fsync`): maximum durability,
    /// at a per-mutation latency cost.
    pub wal_fsync: bool,
    /// Deterministic disk-fault injection (`--io-fault-*`): when set, the
    /// registry's WAL and snapshot IO consult a seeded injector. Chaos
    /// testing only — never set in production deployments.
    pub io_fault: Option<FaultSpec>,
    /// Seed of the fault injector's deterministic RNG
    /// (`--io-fault-seed`): the same seed and spec produce bit-identical
    /// fault schedules.
    pub io_fault_seed: u64,
    /// The clock the server's timers run on. `None` deploys on the OS
    /// clock; the deterministic simulation harness injects a
    /// [`laminar_server::SimClock`] so probe timers and frame latency
    /// run under virtual time.
    pub clock: Option<laminar_server::SharedClock>,
}

impl Default for LaminarConfig {
    fn default() -> Self {
        LaminarConfig {
            max_containers: 8,
            cold_start: Duration::from_millis(5),
            prewarmed: 1,
            stock_workflows: true,
            description_context: DescriptionContext::FullClass,
            server: ServerConfig::default(),
            data_dir: None,
            snapshot_every: PersistOptions::default().snapshot_every,
            wal_fsync: false,
            io_fault: None,
            io_fault_seed: 1,
            clock: None,
        }
    }
}

/// A deployed Laminar 2.0 instance.
pub struct Laminar {
    server: Arc<LaminarServer>,
    /// Present when the deployment was configured with `io_fault`: the
    /// chaos harnesses use it to clear/re-arm the fault and read the
    /// injection journal.
    injector: Option<Arc<IoFaultInjector>>,
}

impl Laminar {
    /// Deploy the full stack. Panics when a configured data directory
    /// cannot be opened — use [`Laminar::try_deploy`] to handle that.
    pub fn deploy(config: LaminarConfig) -> Laminar {
        Self::try_deploy(config).unwrap_or_else(|e| panic!("laminar deployment failed: {e}"))
    }

    /// Deploy the full stack, surfacing registry-recovery failures (bad
    /// data directory, unreadable snapshot) instead of panicking.
    pub fn try_deploy(config: LaminarConfig) -> Result<Laminar, RegistryError> {
        let mut injector = None;
        let registry = match &config.data_dir {
            Some(dir) => {
                let opts = PersistOptions {
                    snapshot_every: config.snapshot_every,
                    sync: if config.wal_fsync {
                        SyncPolicy::EveryAppend
                    } else {
                        SyncPolicy::OsBuffered
                    },
                };
                match &config.io_fault {
                    Some(spec) => {
                        let inj = IoFaultInjector::new(config.io_fault_seed, spec.clone());
                        let hook: FaultHook = inj.clone();
                        injector = Some(inj);
                        Registry::open_with_faults(dir, opts, hook)?
                    }
                    None => Registry::open(dir, opts)?,
                }
            }
            None => Registry::new(),
        };
        let library = if config.stock_workflows {
            WorkflowLibrary::with_stock_workflows()
        } else {
            WorkflowLibrary::new()
        };
        let engine = ExecutionEngine::new(
            PoolConfig {
                max_containers: config.max_containers,
                cold_start: config.cold_start,
                prewarmed: config.prewarmed,
            },
            library,
        );
        let mut server = match &config.clock {
            Some(clock) => {
                LaminarServer::with_clock(registry, engine, config.server.clone(), clock.clone())
            }
            None => LaminarServer::new(registry, engine, config.server.clone()),
        };
        server.set_description_context(config.description_context);
        Ok(Laminar {
            server: Arc::new(server),
            injector,
        })
    }

    /// The underlying server (for direct protocol access / evaluation).
    pub fn server(&self) -> Arc<LaminarServer> {
        self.server.clone()
    }

    /// The configured IO fault injector, when the deployment set
    /// `io_fault` (chaos harnesses clear/re-arm it between phases).
    pub fn fault_injector(&self) -> Option<Arc<IoFaultInjector>> {
        self.injector.clone()
    }

    /// A client connected over the streaming (HTTP/2-style) transport.
    pub fn client(&self) -> LaminarClient {
        LaminarClient::connect(self.server.clone())
    }

    /// A client over an explicit transport (E8 uses the batch transport as
    /// the Laminar 1.0 baseline).
    pub fn client_with_mode(&self, mode: DeliveryMode, latency: Duration) -> LaminarClient {
        LaminarClient::with_transport(
            Transport::new(self.server.clone(), mode).with_latency(latency),
        )
    }

    /// An interactive CLI bound to a fresh client.
    pub fn cli(&self) -> Cli {
        Cli::new(self.client())
    }

    /// Seed the registry with the stock workflows (isprime, anomaly,
    /// wordcount, doubler) under a `stock` user, so a fresh deployment can
    /// `run isprime_wf` immediately. The missing workflows go up as ONE
    /// `RegisterBatch` (v6): analysis is pipelined across them and the
    /// registry commits under a single WAL fsync. Idempotent — a registry
    /// recovered from `--data-dir` already holds the stock rows, so the
    /// `stock` user is logged into rather than re-registered and present
    /// workflows are skipped.
    pub fn seed_stock_registry(&self) -> Result<(), laminar_client::ClientError> {
        use laminar_server::protocol::{BatchItemWire, BatchOutcomeWire};
        let mut client = self.client();
        if client.register("stock", "stock").is_err() {
            client.login("stock", "stock")?;
        }
        let items: Vec<BatchItemWire> = [
            ("isprime_wf", ISPRIME_WORKFLOW_SOURCE),
            ("anomaly_wf", ANOMALY_WORKFLOW_SOURCE),
            ("wordcount_wf", WORDCOUNT_WORKFLOW_SOURCE),
            ("doubler_wf", DOUBLER_WORKFLOW_SOURCE),
        ]
        .into_iter()
        .filter(|(name, _)| client.get_workflow(*name).is_err())
        .map(|(name, source)| BatchItemWire::Workflow {
            name: name.to_string(),
            code: source.to_string(),
            description: None,
            pes: laminar_client::extract_pes_from_source(source),
        })
        .collect();
        if items.is_empty() {
            return Ok(());
        }
        for outcome in client.register_batch(items)? {
            if let BatchOutcomeWire::Failed { error, .. } = outcome {
                return Err(laminar_client::ClientError::Server(error));
            }
        }
        Ok(())
    }
}

/// Word-count workflow source (the Fig. 7 registry content).
pub const WORDCOUNT_WORKFLOW_SOURCE: &str = "\
from dispel4py.base import IterativePE, ProducerPE, ConsumerPE

class Sentences(ProducerPE):
    \"\"\"Produces sentences of text for the word counting pipeline.\"\"\"
    def _process(self, inputs):
        return 'stream processing with laminar'

class Splitter(IterativePE):
    \"\"\"Splits a sentence into its words.\"\"\"
    def _process(self, sentence):
        for word in sentence.split():
            self.write('output', {'word': word})

class WordCounter(IterativePE):
    \"\"\"Counts the words of the stream, emitting running counts per word.\"\"\"
    def _process(self, record):
        word = record['word']
        self.counts[word] = self.counts.get(word, 0) + 1
        return '{} {}'.format(word, self.counts[word])

class PrintCount(ConsumerPE):
    \"\"\"Prints each word count line.\"\"\"
    def _process(self, line):
        print(line)
";

/// Doubler workflow source (the quickstart pipeline).
pub const DOUBLER_WORKFLOW_SOURCE: &str = "\
from dispel4py.base import IterativePE, ProducerPE, ConsumerPE

class Numbers(ProducerPE):
    \"\"\"Produces consecutive integers.\"\"\"
    def _process(self, inputs):
        return self.counter

class Double(IterativePE):
    \"\"\"Doubles every number of the stream.\"\"\"
    def _process(self, num):
        return num * 2

class Print(ConsumerPE):
    \"\"\"Prints each doubled number.\"\"\"
    def _process(self, num):
        print('got {}'.format(num))
";

/// The paper's Listing 1 / Fig. 5 workflow source, used by examples and
/// docs (the Python twin of `d4py::workflows::isprime_graph`).
pub const ISPRIME_WORKFLOW_SOURCE: &str = "\
import random
from dispel4py.base import IterativePE, ProducerPE, ConsumerPE
from dispel4py.workflow_graph import WorkflowGraph

class NumberProducer(ProducerPE):
    def _process(self, inputs):
        return random.randint(1, 1000)

class IsPrime(IterativePE):
    \"\"\"Checks whether a given number is prime and returns the number if it is.\"\"\"
    def _process(self, num):
        if all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    def _process(self, num):
        print('the num {} is prime'.format(num))

producer = NumberProducer()
isprime = IsPrime()
printer = PrintPrime()
graph = WorkflowGraph()
graph.connect(producer, 'output', isprime, 'input')
graph.connect(isprime, 'output', printer, 'input')
";

/// The Fig. 8 registry content: anomaly-pipeline workflow source.
pub const ANOMALY_WORKFLOW_SOURCE: &str = "\
from dispel4py.base import IterativePE, ProducerPE, ConsumerPE

class SensorReadings(ProducerPE):
    \"\"\"Produces temperature records from the sensor array.\"\"\"
    def _process(self, inputs):
        return {'sensor': 's1', 'kelvin': 293.0}

class NormalizeDataPE(IterativePE):
    \"\"\"This pe normalizes the temperature of a record to celsius.\"\"\"
    def _process(self, record):
        record['celsius'] = record['kelvin'] - 273.15
        return record

class AnomalyDetectionPE(IterativePE):
    \"\"\"Anomaly detection PE: detects anomalies in records whose temperature deviates from the mean.\"\"\"
    def _process(self, record):
        if abs(record['celsius'] - self.mean) > self.threshold:
            return record

class AlertingPE(ConsumerPE):
    \"\"\"AlertingPE class: raises an alert for each anomalous record.\"\"\"
    def _process(self, record):
        print('ALERT anomaly detected: {}'.format(record))
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_and_run_end_to_end() {
        let laminar = Laminar::deploy(LaminarConfig::default());
        let mut client = laminar.client();
        client.register("rosa", "pw").unwrap();
        let reg = client
            .register_workflow("isprime_wf", ISPRIME_WORKFLOW_SOURCE)
            .unwrap();
        assert_eq!(reg.pes.len(), 3);
        let out = client.run(reg.workflow.1, 10).unwrap();
        assert!(out.ok);
        for l in &out.lines {
            assert!(l.contains("is prime"));
        }
    }

    #[test]
    fn docstrings_flow_into_descriptions_and_search() {
        let laminar = Laminar::deploy(LaminarConfig::default());
        let mut client = laminar.client();
        client.register("rosa", "pw").unwrap();
        client
            .register_workflow("anomaly_wf", ANOMALY_WORKFLOW_SOURCE)
            .unwrap();
        // Fig. 8's query must rank the anomaly PE first now that the
        // docstring carries domain vocabulary.
        let hits = client
            .search_registry_semantic(SearchScope::Pe, "a pe that is able to detect anomalies")
            .unwrap();
        assert_eq!(hits[0].name, "AnomalyDetectionPE", "{hits:?}");
    }

    #[test]
    fn non_stock_deployment_cannot_run_but_can_search() {
        let laminar = Laminar::deploy(LaminarConfig {
            stock_workflows: false,
            ..LaminarConfig::default()
        });
        let mut client = laminar.client();
        client.register("u", "p").unwrap();
        let reg = client
            .register_workflow("isprime_wf", ISPRIME_WORKFLOW_SOURCE)
            .unwrap();
        // Search works (registry-backed)…
        let hits = client
            .search_registry_semantic(SearchScope::Pe, "prime numbers")
            .unwrap();
        assert!(!hits.is_empty());
        // …but running fails: no runnable twin in the engine library.
        assert!(client.run(reg.workflow.1, 3).is_err());
    }

    #[test]
    fn durable_deploy_survives_restart_and_reseeds_idempotently() {
        let dir = std::env::temp_dir().join(format!("laminar-core-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = LaminarConfig {
            data_dir: Some(dir.clone()),
            ..LaminarConfig::default()
        };
        {
            let laminar = Laminar::deploy(config.clone());
            laminar.seed_stock_registry().unwrap();
            let mut client = laminar.client();
            client.login("stock", "stock").unwrap();
            assert!(client.run("isprime_wf", 3).unwrap().ok);
        }
        // "Restart": a fresh deployment over the same data directory
        // recovers the rows; re-seeding is a no-op rather than a panic.
        let laminar = Laminar::deploy(config);
        laminar.seed_stock_registry().unwrap();
        let mut client = laminar.client();
        client.login("stock", "stock").unwrap();
        let (pes, wfs) = client.get_registry().unwrap();
        assert_eq!(wfs.len(), 4, "{wfs:?}");
        assert!(!pes.is_empty());
        assert!(client.run("isprime_wf", 3).unwrap().ok);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeding_sends_one_batch() {
        let laminar = Laminar::deploy(LaminarConfig::default());
        laminar.seed_stock_registry().unwrap();
        let mut client = laminar.client();
        client.login("stock", "stock").unwrap();
        let snap = client.metrics().unwrap();
        assert_eq!(snap.ingest.batches, 1, "{:?}", snap.ingest);
        assert_eq!(snap.ingest.items, 4);
        let (pes, wfs) = client.get_registry().unwrap();
        assert_eq!(wfs.len(), 4, "{wfs:?}");
        assert_eq!(pes.len(), 14, "{pes:?}");
        // Re-seeding is a no-op: every workflow present, no second batch.
        laminar.seed_stock_registry().unwrap();
        assert_eq!(client.metrics().unwrap().ingest.batches, 1);
    }

    #[test]
    fn cli_binding_works() {
        let laminar = Laminar::deploy(LaminarConfig::default());
        let mut cli = laminar.cli();
        cli.client().register("u", "p").unwrap();
        let out = cli.execute("help");
        assert!(out.contains("register_workflow"));
    }

    #[test]
    fn prewarmed_pool_avoids_first_cold_start() {
        let laminar = Laminar::deploy(LaminarConfig {
            prewarmed: 2,
            ..LaminarConfig::default()
        });
        let mut client = laminar.client();
        client.register("u", "p").unwrap();
        client
            .register_workflow("isprime_wf", ISPRIME_WORKFLOW_SOURCE)
            .unwrap();
        let out = client.run("isprime_wf", 2).unwrap();
        assert!(out.ok);
        assert!(
            out.infos.iter().any(|i| i.contains("warm")),
            "{:?}",
            out.infos
        );
    }
}
