//! The standalone Laminar server binary: deploys the full stack and
//! serves it over TCP (the server container of the paper's Dockerised
//! architecture, Fig. 4).
//!
//! ```text
//! cargo run -p laminar-core --bin laminar-server -- 0.0.0.0:7878
//! # tune the serving path:
//! cargo run -p laminar-core --bin laminar-server -- 0.0.0.0:7878 \
//!     --max-connections 64 --request-timeout-secs 60
//! # durable registry (survives restarts):
//! cargo run -p laminar-core --bin laminar-server -- 0.0.0.0:7878 \
//!     --data-dir /var/lib/laminar --snapshot-every 1024
//! # then, from anywhere:
//! cargo run -p laminar-core --bin laminar -- --connect 127.0.0.1:7878
//! ```

use laminar_core::{Laminar, LaminarConfig, NetServer, NetServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: laminar-server [ADDR] [--max-connections N] \
         [--request-timeout-secs N] [--drain-timeout-secs N] \
         [--data-dir PATH] [--snapshot-every N] [--wal-fsync] \
         [--quantized] [--rescore-window N] [--query-cache-entries N]"
    );
    std::process::exit(2);
}

fn parse_args() -> (String, NetServerConfig, LaminarConfig) {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = NetServerConfig::default();
    let mut deploy = LaminarConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = || -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--max-connections" => {
                let n = numeric();
                config.max_connections = n as usize;
            }
            "--request-timeout-secs" => {
                let n = numeric();
                config.request_timeout = Duration::from_secs(n);
            }
            "--drain-timeout-secs" => {
                let n = numeric();
                config.drain_timeout = Duration::from_secs(n);
            }
            "--data-dir" => {
                deploy.data_dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--snapshot-every" => {
                deploy.snapshot_every = numeric();
            }
            "--wal-fsync" => deploy.wal_fsync = true,
            "--quantized" => deploy.server.quantized = true,
            "--rescore-window" => {
                deploy.server.rescore_window = numeric() as usize;
            }
            "--query-cache-entries" => {
                deploy.server.query_cache_entries = numeric() as usize;
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => usage(),
            positional => addr = positional.to_string(),
        }
    }
    if config.max_connections == 0 {
        usage();
    }
    (addr, config, deploy)
}

fn main() {
    let (addr, config, deploy) = parse_args();
    let data_dir = deploy.data_dir.clone();
    let laminar = Laminar::try_deploy(deploy).unwrap_or_else(|e| {
        eprintln!("cannot open registry data directory: {e}");
        std::process::exit(1);
    });
    laminar
        .seed_stock_registry()
        .expect("stock registry seeding (fresh or recovered deployment)");
    let net = NetServer::bind_with(&addr, laminar.server(), config.clone()).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("laminar server listening on {}", net.addr());
    println!(
        "serving path: max {} concurrent connections, {}s request deadline",
        config.max_connections,
        config.request_timeout.as_secs()
    );
    match data_dir {
        Some(dir) => println!("registry: durable at {} (WAL + snapshots)", dir.display()),
        None => println!("registry: in-memory (pass --data-dir to persist across restarts)"),
    }
    println!("stock workflows registered: isprime_wf, anomaly_wf, wordcount_wf, doubler_wf");
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
