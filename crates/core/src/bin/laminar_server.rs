//! The standalone Laminar server binary: deploys the full stack and
//! serves it over TCP (the server container of the paper's Dockerised
//! architecture, Fig. 4).
//!
//! ```text
//! cargo run -p laminar-core --bin laminar-server -- 0.0.0.0:7878
//! # then, from anywhere:
//! cargo run -p laminar-core --bin laminar -- --connect 127.0.0.1:7878
//! ```

use laminar_core::{Laminar, LaminarConfig};
use laminar_server::NetServer;

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let laminar = Laminar::deploy(LaminarConfig::default());
    laminar
        .seed_stock_registry()
        .expect("stock registry seeding on a fresh deployment");
    let net = NetServer::bind(&addr, laminar.server()).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("laminar server listening on {}", net.addr());
    println!("stock workflows registered: isprime_wf, anomaly_wf, wordcount_wf, doubler_wf");
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
