//! The standalone Laminar server binary: deploys the full stack and
//! serves it over TCP (the server container of the paper's Dockerised
//! architecture, Fig. 4).
//!
//! ```text
//! cargo run -p laminar-core --bin laminar-server -- 0.0.0.0:7878
//! # tune the serving path:
//! cargo run -p laminar-core --bin laminar-server -- 0.0.0.0:7878 \
//!     --max-connections 64 --request-timeout-secs 60
//! # durable registry (survives restarts):
//! cargo run -p laminar-core --bin laminar-server -- 0.0.0.0:7878 \
//!     --data-dir /var/lib/laminar --snapshot-every 1024
//! # then, from anywhere:
//! cargo run -p laminar-core --bin laminar -- --connect 127.0.0.1:7878
//! ```

use laminar_core::{
    FaultKind, FaultMode, FaultSpec, IoSite, Laminar, LaminarConfig, NetServer, NetServerConfig,
};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: laminar-server [ADDR] [--max-connections N] \
         [--request-timeout-secs N] [--drain-timeout-secs N] \
         [--data-dir PATH] [--snapshot-every N] [--wal-fsync] \
         [--quantized] [--rescore-window N] [--query-cache-entries N] \
         [--reco-retrieve-n N] [--reco-rerank-keep N] \
         [--reco-cluster-sim F] [--reco-parallel-threshold N] \
         [--reco-lsh-min-entries N] \
         [--probe-interval-ms N] \
         [--io-fault-kind enospc|short-write|fsync-error] \
         [--io-fault-mode nth:N|from:N|random:PCT] \
         [--io-fault-site SITE]... [--io-fault-seed N]\n\
         \n\
         Disk chaos (testing only): --io-fault-kind arms a deterministic\n\
         fault injector on the registry's WAL/snapshot IO. --io-fault-mode\n\
         picks when it fires (nth:N = the Nth matching op, from:N = every\n\
         op from the Nth on, random:PCT = each op with PCT percent\n\
         probability). --io-fault-site limits it to named sites (wal_append,\n\
         wal_batch_append, wal_fsync, wal_truncate, snapshot_write,\n\
         snapshot_fsync, snapshot_rename; default all). The same seed and\n\
         spec replay a bit-identical fault schedule. A persist failure\n\
         flips the server into read-only degraded mode; the recovery\n\
         probe (--probe-interval-ms, 0 disables) restores it."
    );
    std::process::exit(2);
}

fn parse_site(name: &str) -> IoSite {
    *IoSite::ALL
        .iter()
        .find(|s| s.name() == name)
        .unwrap_or_else(|| usage())
}

fn parse_fault_mode(s: &str) -> FaultMode {
    let (kind, n) = s.split_once(':').unwrap_or_else(|| usage());
    let n: u64 = n.parse().unwrap_or_else(|_| usage());
    match kind {
        "nth" => FaultMode::Nth(n),
        "from" => FaultMode::From(n),
        "random" => FaultMode::Random(n as u32),
        _ => usage(),
    }
}

fn parse_args() -> (String, NetServerConfig, LaminarConfig) {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = NetServerConfig::default();
    let mut deploy = LaminarConfig::default();
    // The standalone server probes degraded storage every second by
    // default; unit-test deployments keep the library default of 0.
    deploy.server.probe_interval_ms = 1000;
    let mut fault_kind: Option<FaultKind> = None;
    let mut fault_mode = FaultMode::Nth(1);
    let mut fault_sites: Vec<IoSite> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = || -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--max-connections" => {
                let n = numeric();
                config.max_connections = n as usize;
            }
            "--request-timeout-secs" => {
                let n = numeric();
                config.request_timeout = Duration::from_secs(n);
            }
            "--drain-timeout-secs" => {
                let n = numeric();
                config.drain_timeout = Duration::from_secs(n);
            }
            "--data-dir" => {
                deploy.data_dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--snapshot-every" => {
                deploy.snapshot_every = numeric();
            }
            "--wal-fsync" => deploy.wal_fsync = true,
            "--quantized" => deploy.server.quantized = true,
            "--rescore-window" => {
                deploy.server.rescore_window = numeric() as usize;
            }
            "--query-cache-entries" => {
                deploy.server.query_cache_entries = numeric() as usize;
            }
            "--reco-retrieve-n" => {
                deploy.server.reco_retrieve_n = numeric() as usize;
            }
            "--reco-rerank-keep" => {
                deploy.server.reco_rerank_keep = numeric() as usize;
            }
            "--reco-cluster-sim" => {
                deploy.server.reco_cluster_sim = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--reco-parallel-threshold" => {
                deploy.server.reco_parallel_threshold = numeric() as usize;
            }
            "--reco-lsh-min-entries" => {
                deploy.server.reco_lsh_min_entries = numeric() as usize;
            }
            "--probe-interval-ms" => {
                deploy.server.probe_interval_ms = numeric();
            }
            "--io-fault-kind" => {
                fault_kind = Some(match args.next().as_deref() {
                    Some("enospc") => FaultKind::Enospc,
                    Some("short-write") => FaultKind::ShortWrite,
                    Some("fsync-error") => FaultKind::FsyncError,
                    _ => usage(),
                });
            }
            "--io-fault-mode" => {
                fault_mode = parse_fault_mode(&args.next().unwrap_or_else(|| usage()));
            }
            "--io-fault-site" => {
                fault_sites.push(parse_site(&args.next().unwrap_or_else(|| usage())));
            }
            "--io-fault-seed" => {
                deploy.io_fault_seed = numeric();
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => usage(),
            positional => addr = positional.to_string(),
        }
    }
    if config.max_connections == 0 {
        usage();
    }
    if let Some(kind) = fault_kind {
        if deploy.data_dir.is_none() {
            eprintln!("--io-fault-* needs --data-dir (the injector hooks the registry's disk IO)");
            std::process::exit(2);
        }
        deploy.io_fault = Some(FaultSpec {
            sites: fault_sites,
            mode: fault_mode,
            kind,
            short_cut: None,
        });
    }
    (addr, config, deploy)
}

fn main() {
    let (addr, config, deploy) = parse_args();
    let data_dir = deploy.data_dir.clone();
    let laminar = Laminar::try_deploy(deploy).unwrap_or_else(|e| {
        eprintln!("cannot open registry data directory: {e}");
        std::process::exit(1);
    });
    laminar
        .seed_stock_registry()
        .expect("stock registry seeding (fresh or recovered deployment)");
    let net = NetServer::bind_with(&addr, laminar.server(), config.clone()).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("laminar server listening on {}", net.addr());
    println!(
        "serving path: max {} concurrent connections, {}s request deadline",
        config.max_connections,
        config.request_timeout.as_secs()
    );
    match data_dir {
        Some(dir) => println!("registry: durable at {} (WAL + snapshots)", dir.display()),
        None => println!("registry: in-memory (pass --data-dir to persist across restarts)"),
    }
    if laminar.fault_injector().is_some() {
        println!("io fault injector ARMED (chaos testing — expect degraded mode)");
    }
    println!("stock workflows registered: isprime_wf, anomaly_wf, wordcount_wf, doubler_wf");
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
