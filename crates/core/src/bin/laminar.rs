//! The `laminar` CLI binary (paper Fig. 5).
//!
//! Deploys an in-process Laminar 2.0 stack, auto-registers a demo user, and
//! drops into the interactive prompt:
//!
//! ```text
//! $ cargo run -p laminar-core --bin laminar
//! Welcome to the Laminar CLI
//! (laminar) help
//! ```

use laminar_client::{Cli, LaminarClient};
use laminar_core::{Laminar, LaminarConfig};
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    // `--connect host:port` talks to a remote laminar-server over TCP;
    // otherwise an in-process stack is deployed. `--data-dir PATH` makes
    // the in-process registry durable: quit, relaunch with the same path,
    // and every registered PE and workflow is still there. `--quantized`,
    // `--rescore-window N` and `--query-cache-entries N` tune the
    // in-process search path, and the `--reco-*` flags tune the Aroma
    // recommendation pipeline, the same way the server flags do.
    //
    // Any remaining positional words are executed as ONE command and the
    // process exits with the command's status — so
    // `laminar --connect server:7878 health` works directly as a
    // container healthcheck (nonzero exit when the server is degraded).
    let args: Vec<String> = std::env::args().collect();
    let value_flags = [
        "--connect",
        "--data-dir",
        "--rescore-window",
        "--query-cache-entries",
        "--reco-retrieve-n",
        "--reco-rerank-keep",
        "--reco-cluster-sim",
        "--reco-parallel-threshold",
        "--reco-lsh-min-entries",
    ];
    let mut oneshot: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let a = args[i].as_str();
        if value_flags.contains(&a) {
            i += 2;
        } else if a.starts_with("--") {
            i += 1;
        } else {
            oneshot.push(args[i].clone());
            i += 1;
        }
    }
    let connect = args
        .iter()
        .position(|a| a == "--connect")
        .and_then(|i| args.get(i + 1).cloned());
    let data_dir = args
        .iter()
        .position(|a| a == "--data-dir")
        .and_then(|i| args.get(i + 1).cloned());
    let quantized = args.iter().any(|a| a == "--quantized");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let rescore_window = flag_value("--rescore-window");
    let query_cache_entries = flag_value("--query-cache-entries");
    let reco_retrieve_n = flag_value("--reco-retrieve-n");
    let reco_rerank_keep = flag_value("--reco-rerank-keep");
    let reco_parallel_threshold = flag_value("--reco-parallel-threshold");
    let reco_lsh_min_entries = flag_value("--reco-lsh-min-entries");
    let reco_cluster_sim = args
        .iter()
        .position(|a| a == "--reco-cluster-sim")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f32>().ok());

    let (_local, mut cli) = match connect {
        Some(addr) => {
            use std::net::ToSocketAddrs;
            let sockaddr = addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut it| it.next())
                .unwrap_or_else(|| {
                    eprintln!("cannot resolve address '{addr}'");
                    std::process::exit(1);
                });
            (None, Cli::new(LaminarClient::connect_tcp(sockaddr)))
        }
        None => {
            let mut config = LaminarConfig {
                data_dir: data_dir.map(Into::into),
                ..LaminarConfig::default()
            };
            config.server.quantized = quantized;
            if let Some(w) = rescore_window {
                config.server.rescore_window = w;
            }
            if let Some(n) = query_cache_entries {
                config.server.query_cache_entries = n;
            }
            if let Some(n) = reco_retrieve_n {
                config.server.reco_retrieve_n = n;
            }
            if let Some(n) = reco_rerank_keep {
                config.server.reco_rerank_keep = n;
            }
            if let Some(s) = reco_cluster_sim {
                config.server.reco_cluster_sim = s;
            }
            if let Some(n) = reco_parallel_threshold {
                config.server.reco_parallel_threshold = n;
            }
            if let Some(n) = reco_lsh_min_entries {
                config.server.reco_lsh_min_entries = n;
            }
            let laminar = Laminar::try_deploy(config).unwrap_or_else(|e| {
                eprintln!("cannot open registry data directory: {e}");
                std::process::exit(1);
            });
            let cli = laminar.cli();
            (Some(laminar), cli)
        }
    };
    // The paper's CLI sessions assume an authenticated user; mirror that:
    // register the demo user, or log in when it already exists (remote).
    // Not fatal: a degraded (read-only) server rejects registration, but
    // tokenless commands — health in particular — must still work.
    if cli.client().register("demo", "demo").is_err() {
        if let Err(e) = cli.client().login("demo", "demo") {
            eprintln!("warning: cannot authenticate as demo ({e}); tokenless commands still work");
        }
    }

    if !oneshot.is_empty() {
        let out = cli.execute(&oneshot.join(" "));
        if !out.is_empty() {
            println!("{out}");
        }
        return ExitCode::from(cli.exit_code());
    }

    println!("Welcome to the Laminar CLI");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("{}", cli.prompt());
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                let out = cli.execute(line.trim());
                if !out.is_empty() {
                    println!("{out}");
                }
                if cli.done {
                    break;
                }
            }
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
    // Scripted sessions (`laminar < commands.txt`) exit nonzero when any
    // command failed, instead of swallowing errors into stdout text.
    ExitCode::from(cli.exit_code())
}
