//! Property suite for the Aroma pipeline (ISSUE 9).
//!
//! Over deterministic synthetic corpora:
//! * clustering covers every pruned input exactly once,
//! * every cluster's seed is its best-ranked member,
//! * parallel prune/rerank is bit-identical to serial,
//! * the engine's pruned set is exactly what the public stage functions
//!   produce (the server serves the same code path).

use aroma::{
    cluster_results, granulated_vec, prune_and_rerank, AromaConfig, AromaEngine, PrunedSnippet,
    Snippet,
};

/// Deterministic xorshift so the "random" corpora are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A synthetic Python snippet drawn from a handful of idiom families, so
/// corpora contain both near-duplicates (cluster fodder) and noise.
fn snippet(rng: &mut Rng, id: u64) -> Snippet {
    let family = rng.below(5);
    let a = rng.below(9);
    let b = rng.below(9);
    let code = match family {
        0 => format!(
            "total = 0\nfor item in data{a}:\n    total += item * {b}\nreturn total\n"
        ),
        1 => format!(
            "with open(path{a}) as fh:\n    body = fh.read()\nprint(body[{b}])\n"
        ),
        2 => format!(
            "def f{a}(x):\n    if x > {b}:\n        return x\n    return {b}\n"
        ),
        3 => format!(
            "class PE{a}(IterativePE):\n    def _process(self, num):\n        return num * {b}\n"
        ),
        _ => format!(
            "best = None\nfor item in xs{a}:\n    if best is None or item > best:\n        best = item\n"
        ),
    };
    Snippet::new(id, format!("S{id}"), code)
}

fn corpus(seed: u64, n: u64) -> Vec<Snippet> {
    let mut rng = Rng(seed);
    (0..n).map(|id| snippet(&mut rng, id)).collect()
}

const QUERIES: &[&str] = &[
    "total = 0\nfor item in data1:\n    total += item\n",
    "with open(path2) as fh:\n    body = fh.read()\n",
    "def f3(x):\n    if x > 4:\n        return x\n",
    "class PE1(IterativePE):\n    def _process(self, num):\n        return num * 2\n",
    "best = None\nfor item in xs0:\n    if item > best:\n        best = item\n",
];

/// Replicate the engine's prune stage through the public stage functions:
/// retrieval → serial prune → deterministic sort → truncate.
fn pruned_via_stages(e: &AromaEngine, query: &str) -> Vec<PrunedSnippet> {
    let qvec = spt::Spt::parse_source(query).feature_vec();
    let hits = e.index().search_vec(&qvec, e.config().retrieve_n);
    let gvec = granulated_vec(query);
    let mut pruned: Vec<PrunedSnippet> = hits
        .iter()
        .filter_map(|h| {
            let code = &e.index().get(h.id)?.code;
            Some(prune_and_rerank(h.id, code, &gvec))
        })
        .collect();
    pruned.sort_by(|a, b| {
        b.rerank_score
            .partial_cmp(&a.rerank_score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    pruned.truncate(e.config().rerank_keep);
    pruned
}

#[test]
fn clusters_cover_every_pruned_input_exactly_once() {
    for seed in [3, 7, 99] {
        let mut e = AromaEngine::with_default_config();
        e.add_batch(corpus(seed, 120));
        for q in QUERIES {
            let pruned = pruned_via_stages(&e, q);
            for sim in [0.0f32, 0.3, 0.5, 0.9, 1.5] {
                let clusters = cluster_results(&pruned, sim);
                let mut covered: Vec<usize> = clusters
                    .iter()
                    .flat_map(|c| c.members.iter().copied())
                    .collect();
                covered.sort_unstable();
                let expected: Vec<usize> = (0..pruned.len()).collect();
                assert_eq!(covered, expected, "seed {seed} query {q:?} sim {sim}");
            }
        }
    }
}

#[test]
fn every_seed_is_the_best_ranked_member() {
    for seed in [5, 42] {
        let mut e = AromaEngine::with_default_config();
        e.add_batch(corpus(seed, 150));
        for q in QUERIES {
            let pruned = pruned_via_stages(&e, q);
            let clusters = cluster_results(&pruned, 0.5);
            for c in &clusters {
                let Some(s) = c.seed() else {
                    panic!("cluster_results produced an empty cluster");
                };
                // pruned is rank-sorted, so "best ranked" == lowest index.
                assert_eq!(Some(&s), c.members.iter().min());
                for &m in &c.members {
                    assert!(
                        pruned[s].rerank_score >= pruned[m].rerank_score,
                        "seed {} outranked by member {} (seed {seed}, query {q:?})",
                        pruned[s].id,
                        pruned[m].id,
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_prune_rerank_bit_identical_to_serial() {
    for (seed, n) in [(11u64, 40u64), (23, 200), (61, 500)] {
        let rows = corpus(seed, n);
        let mut serial = AromaEngine::new(AromaConfig {
            parallel_threshold: usize::MAX,
            retrieve_n: 100,
            ..AromaConfig::default()
        });
        serial.add_batch(rows.clone());
        let mut parallel = AromaEngine::new(AromaConfig {
            parallel_threshold: 0,
            retrieve_n: 100,
            ..AromaConfig::default()
        });
        parallel.add_batch(rows);
        for q in QUERIES {
            let (rs, ss) = serial.recommend_with_stats(q);
            let (rp, sp) = parallel.recommend_with_stats(q);
            assert!(!ss.parallel);
            assert!(sp.parallel || ss.retrieved == 0);
            assert_eq!(rs.len(), rp.len(), "seed {seed} query {q:?}");
            for (a, b) in rs.iter().zip(&rp) {
                assert_eq!(a.seed_id, b.seed_id);
                assert_eq!(a.seed_name, b.seed_name);
                assert_eq!(a.code, b.code);
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "seed {seed} {q:?}");
                assert_eq!(a.retrieval_score.to_bits(), b.retrieval_score.to_bits());
                assert_eq!(a.cluster_size, b.cluster_size);
            }
        }
    }
}

#[test]
fn engine_matches_stage_functions_end_to_end() {
    // The engine's recommendations must come from exactly the pruned set
    // the public stage functions produce — no hidden divergence between
    // the library pipeline and what the server composes from it.
    let mut e = AromaEngine::with_default_config();
    e.add_batch(corpus(17, 80));
    for q in QUERIES {
        let pruned = pruned_via_stages(&e, q);
        let clusters = cluster_results(&pruned, e.config().cluster_sim);
        let recs = e.recommend(q);
        assert!(recs.len() <= clusters.len());
        for r in &recs {
            assert!(
                pruned.iter().any(|p| p.id == r.seed_id),
                "seed {} not in the stage-function pruned set ({q:?})",
                r.seed_id
            );
        }
    }
}
