//! Iterative clustering of pruned results (Aroma stage 4).
//!
//! Reranked snippets that are near-duplicates of each other should yield
//! *one* recommendation, not five. Clusters are grown greedily from the
//! highest-ranked unclustered snippet: any later snippet whose pruned
//! feature vector is sufficiently similar (cosine ≥ `sim_threshold`) joins
//! the cluster of that seed.

use crate::prune::PrunedSnippet;

/// One cluster: indices into the pruned-results slice, seed first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    pub members: Vec<usize>,
}

impl Cluster {
    /// Index of the best-ranked member (the seed), or `None` for an empty
    /// cluster. [`cluster_results`] never produces empty clusters, but the
    /// accessor is total so hand-built clusters cannot panic the pipeline.
    pub fn seed(&self) -> Option<usize> {
        self.members.first().copied()
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Greedy seed-based clustering. `pruned` must be sorted by rank (best
/// first) — the output preserves that order across cluster seeds.
pub fn cluster_results(pruned: &[PrunedSnippet], sim_threshold: f32) -> Vec<Cluster> {
    let mut assigned = vec![false; pruned.len()];
    let mut clusters = Vec::new();
    for i in 0..pruned.len() {
        if assigned[i] {
            continue;
        }
        assigned[i] = true;
        let mut members = vec![i];
        for (j, done) in assigned.iter_mut().enumerate().skip(i + 1) {
            if *done {
                continue;
            }
            let sim = pruned[i].pruned_vec.cosine(&pruned[j].pruned_vec);
            if sim >= sim_threshold {
                *done = true;
                members.push(j);
            }
        }
        clusters.push(Cluster { members });
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::prune_and_rerank;

    fn pruned_of(id: u64, code: &str, query: &str) -> PrunedSnippet {
        let q = crate::prune::granulated_vec(query);
        prune_and_rerank(id, code, &q)
    }

    #[test]
    fn near_duplicates_cluster_together() {
        let query = "total = 0\nfor item in data:\n    total += item\n";
        let a = pruned_of(
            1,
            "total = 0\nfor item in data:\n    total += item\n",
            query,
        );
        let b = pruned_of(2, "acc = 0\nfor x in data:\n    acc += x\n", query);
        let c = pruned_of(3, "with open(p) as fh:\n    body = fh.read()\n", query);
        let clusters = cluster_results(&[a, b, c], 0.5);
        assert_eq!(clusters.len(), 2, "{clusters:?}");
        assert_eq!(clusters[0].members, vec![0, 1]);
        assert_eq!(clusters[1].members, vec![2]);
    }

    #[test]
    fn threshold_one_keeps_everything_separate() {
        let query = "x = 1\n";
        let a = pruned_of(1, "x = 1\ny = 2\n", query);
        let b = pruned_of(2, "x = 1\nz = 3\n", query);
        let clusters = cluster_results(&[a, b], 1.0 + f32::EPSILON);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn threshold_zero_merges_overlapping() {
        let query = "x = 1\n";
        let a = pruned_of(1, "x = 1\n", query);
        let b = pruned_of(2, "x = 2\n", query);
        let clusters = cluster_results(&[a, b], 0.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(cluster_results(&[], 0.5).is_empty());
    }

    #[test]
    fn seed_is_best_ranked_member() {
        let query = "for i in xs:\n    s += i\n";
        let a = pruned_of(1, "for i in xs:\n    s += i\n", query);
        let b = pruned_of(2, "for j in xs:\n    t += j\n", query);
        let clusters = cluster_results(&[a, b], 0.5);
        assert_eq!(clusters[0].seed(), Some(0));
    }

    #[test]
    fn empty_cluster_has_no_seed() {
        let c = Cluster { members: vec![] };
        assert!(c.is_empty());
        assert_eq!(c.seed(), None);
    }

    #[test]
    fn every_input_assigned_exactly_once() {
        let query = "x = f(y)\n";
        let items: Vec<_> = (0..6)
            .map(|i| pruned_of(i, &format!("x{i} = f(y{i})\nz{i} = {i}\n"), query))
            .collect();
        let clusters = cluster_results(&items, 0.7);
        let mut all: Vec<usize> = clusters.iter().flat_map(|c| c.members.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }
}
