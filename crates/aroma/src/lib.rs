//! `aroma` — structural code search and recommendation (paper §II-E, §VI).
//!
//! Reimplements the Aroma pipeline of Luan et al. (2019), re-targeted from
//! Java to Python exactly as Laminar 2.0 did:
//!
//! 1. **Featurisation & light-weight search** ([`index`]): every indexed
//!    snippet is parsed to an SPT and hashed to a sparse feature vector;
//!    retrieval scores the query vector against the whole corpus with sparse
//!    dot products ("matrix multiplication", Fig. 3).
//! 2. **Prune and rerank** ([`prune`]): each retrieved snippet is pruned to
//!    the statements that actually overlap the query, and reranked by how
//!    much of the query the pruned snippet contains.
//! 3. **Clustering** ([`cluster`]): similar pruned snippets are grouped by
//!    iterative greedy clustering.
//! 4. **Recommendation** ([`recommend`]): each cluster is intersected into
//!    a single representative snippet.
//!
//! The paper's Laminar 2.0 *described* a simplified variant — cosine/
//! overlap scoring of stored `sptEmbedding`s with a configurable score
//! threshold (default 6.0) and top-5 cut, "without the need for complex
//! clustering or reranking steps" (§VI-A). That variant remains as
//! [`laminar::SptSearcher`] (the flat-scan ablation baseline, DESIGN.md
//! E12); the served `code_recommendation` path now runs the full
//! [`AromaEngine`] pipeline end-to-end, kept in registry lockstep by the
//! server's recommendation subsystem (DESIGN.md §12).

pub mod cluster;
pub mod completion;
pub mod engine;
pub mod index;
pub mod laminar;
pub mod lsh;
pub mod prune;
pub mod recommend;

pub use cluster::{cluster_results, Cluster};
pub use completion::{complete_from, Completion};
pub use engine::{AromaConfig, AromaEngine, RecoStats, Recommendation};
pub use index::{ScoredSnippet, Snippet, SnippetId, SnippetIndex};
pub use laminar::{LaminarRecommender, SptHit, SptSearcher};
pub use lsh::{LshConfig, LshIndex, LshPrefilter, LshSearchStats};
pub use prune::{granulated_vec, prune_and_rerank, statement_granules, PrunedSnippet};
pub use recommend::create_recommendation;
