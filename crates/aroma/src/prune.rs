//! Prune and rerank (Aroma stage 3; paper Fig. 3 "Prune and Rerank").
//!
//! Retrieval scores whole snippets, which favours *large* snippets that
//! mention everything. Pruning fixes that: each retrieved snippet is cut
//! down to the statements that actually contribute overlap with the query,
//! and the snippet is re-scored by how much of the *query* the pruned
//! version covers (containment), so small precise matches outrank large
//! diffuse ones.

use pyparse::{NodeId, NodeKind, ParseTree, SyntaxKind};
use spt::{FeatureVec, Spt};

/// A snippet pruned against a query.
#[derive(Debug, Clone)]
pub struct PrunedSnippet {
    pub id: u64,
    /// Kept statements, in source order, as token text.
    pub kept_statements: Vec<String>,
    /// Feature vectors of the kept statements (parallel to `kept_statements`).
    pub kept_vecs: Vec<FeatureVec>,
    /// Rerank score: containment of the query in the pruned snippet,
    /// weighted by the raw overlap (so richer matches still win ties).
    pub rerank_score: f32,
    /// Union feature vector of the kept statements.
    pub pruned_vec: FeatureVec,
}

/// Statement-level nodes of a parse tree: the direct children of the module
/// and of every block. These are the pruning granules.
pub fn statement_nodes(tree: &ParseTree) -> Vec<NodeId> {
    let mut out = Vec::new();
    let Some(root) = tree.root else {
        return out;
    };
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let is_container = matches!(
            tree.kind(id),
            Some(SyntaxKind::Module) | Some(SyntaxKind::Block)
        );
        for &c in tree.node(id).children.iter().rev() {
            if is_container && tree.kind(c).is_some() {
                out.push(c);
            }
            stack.push(c);
        }
    }
    // Stack order mangles source order; restore by NodeId (arena ids grow
    // roughly in parse order, and statements are created in order).
    out.sort_unstable();
    out.dedup();
    out
}

/// All statement granules of `code`: `(header text, feature vector)` per
/// statement node, in source order. Shared by pruning and code completion.
pub fn statement_granules(code: &str) -> Vec<(String, FeatureVec)> {
    let tree = pyparse::parse(code);
    statement_nodes(&tree)
        .into_iter()
        .filter_map(|s| {
            let (text, vec) = granule(&tree, s);
            if vec.is_empty() {
                None
            } else {
                Some((text, vec))
            }
        })
        .collect()
}

/// Featurise `code` in granule form: the multiset union of its statement
/// granules (headers for compound statements). Queries must be featurised
/// this way before [`prune_and_rerank`] so that both sides of the
/// containment/cosine comparison live in the same feature space.
pub fn granulated_vec(code: &str) -> FeatureVec {
    let tree = pyparse::parse(code);
    let mut acc = FeatureVec::default();
    for s in statement_nodes(&tree) {
        let (_, v) = granule(&tree, s);
        acc = merge(&acc, &v);
    }
    // A bare expression (no statement granules) still featurises whole-tree.
    if acc.is_empty() {
        acc = Spt::from_parse_tree(&tree).feature_vec();
    }
    acc
}

/// Prune `code` against the query's *granulated* feature vector and rerank.
///
/// Greedy marginal-gain selection: statements are considered in source
/// order and kept when they add at least one new overlapping feature with
/// the query that previously-kept statements did not already cover.
pub fn prune_and_rerank(id: u64, code: &str, query_vec: &FeatureVec) -> PrunedSnippet {
    let tree = pyparse::parse(code);
    let stmts = statement_nodes(&tree);

    let mut kept_statements = Vec::new();
    let mut kept_vecs: Vec<FeatureVec> = Vec::new();
    let mut covered = 0.0f32;
    let mut pruned_vec = FeatureVec::default();

    for &s in &stmts {
        let (text, svec) = granule(&tree, s);
        if svec.is_empty() {
            continue;
        }
        // Marginal gain: overlap of (pruned ∪ stmt) with query minus what
        // is already covered. Compute via merged vector.
        let merged = merge(&pruned_vec, &svec);
        let new_cover = query_vec.overlap(&merged);
        if new_cover > covered + f32::EPSILON {
            covered = new_cover;
            pruned_vec = merged;
            kept_statements.push(text);
            kept_vecs.push(svec);
        }
    }

    let qtotal = query_vec.total();
    let containment = if qtotal > 0.0 { covered / qtotal } else { 0.0 };
    // Rerank = coverage of the query × closeness of the pruned snippet.
    // The cosine factor penalises diffuse snippets that cover the query
    // only by also dragging in unrelated statements.
    let rerank_score = containment * query_vec.cosine(&pruned_vec);

    PrunedSnippet {
        id,
        kept_statements,
        kept_vecs,
        rerank_score,
        pruned_vec,
    }
}

/// Render one pruning granule: a simple statement as-is, a compound
/// statement as its *header only* (nested `Block`s are excluded — they have
/// their own granules). This keeps pruning line-precise: a big function
/// cannot swallow the whole query by matching as one unit.
fn granule(tree: &ParseTree, id: NodeId) -> (String, FeatureVec) {
    let mut copy = ParseTree::new();
    let root = copy_excluding_blocks(tree, id, &mut copy, true);
    copy.root = root;
    match root {
        Some(r) => {
            let text = copy.text_of(r);
            let vec = Spt::from_parse_tree(&copy).feature_vec();
            (text, vec)
        }
        None => (String::new(), FeatureVec::default()),
    }
}

fn copy_excluding_blocks(
    src: &ParseTree,
    id: NodeId,
    dst: &mut ParseTree,
    is_root: bool,
) -> Option<NodeId> {
    match &src.node(id).kind {
        NodeKind::Leaf(t) => Some(dst.push(NodeKind::Leaf(t.clone()))),
        NodeKind::Internal(k) => {
            if !is_root && *k == SyntaxKind::Block {
                return None;
            }
            let n = dst.push(NodeKind::Internal(*k));
            for &c in &src.node(id).children {
                if let Some(cc) = copy_excluding_blocks(src, c, dst, false) {
                    dst.add_child(n, cc);
                }
            }
            Some(n)
        }
    }
}

/// Multiset union (max of counts would be set-union; sum keeps weights —
/// Aroma uses the multiset sum of distinct statement contributions).
fn merge(a: &FeatureVec, b: &FeatureVec) -> FeatureVec {
    let mut items = Vec::with_capacity(a.items.len() + b.items.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.items.len() || j < b.items.len() {
        match (a.items.get(i), b.items.get(j)) {
            (Some(&(ia, ca)), Some(&(ib, cb))) => match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    items.push((ia, ca));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    items.push((ib, cb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    items.push((ia, ca + cb));
                    i += 1;
                    j += 1;
                }
            },
            (Some(&(ia, ca)), None) => {
                items.push((ia, ca));
                i += 1;
            }
            (None, Some(&(ib, cb))) => {
                items.push((ib, cb));
                j += 1;
            }
            (None, None) => break,
        }
    }
    FeatureVec { items }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CANDIDATE: &str = "\
def process(self, data):
    log.debug('starting')
    total = 0
    for item in data:
        total += item
    self.metrics.record(total)
    return total
";

    fn qvec(src: &str) -> FeatureVec {
        granulated_vec(src)
    }

    #[test]
    fn statement_nodes_cover_all_levels() {
        let tree = pyparse::parse(CANDIDATE);
        let stmts = statement_nodes(&tree);
        // funcdef + 5 body statements + the for-loop body statement = 7.
        assert_eq!(stmts.len(), 7, "{:?}", stmts.len());
    }

    #[test]
    fn pruning_keeps_relevant_statements() {
        let q = qvec("total = 0\nfor item in data:\n    total += item\n");
        let pruned = prune_and_rerank(1, CANDIDATE, &q);
        let joined = pruned.kept_statements.join("\n");
        assert!(joined.contains("total"), "{joined}");
        assert!(joined.contains("for"), "{joined}");
        // Irrelevant logging/metrics lines must be dropped.
        assert!(!joined.contains("log . debug"), "{joined}");
        assert!(!joined.contains("metrics"), "{joined}");
    }

    #[test]
    fn rerank_prefers_precise_over_diffuse() {
        let q = qvec("for item in data:\n    total += item\n");
        let precise = prune_and_rerank(1, "for item in data:\n    total += item\n", &q);
        let diffuse_code = format!("{}\n{}", CANDIDATE, "def other(self):\n    return 42\n");
        let diffuse = prune_and_rerank(2, &diffuse_code, &q);
        assert!(
            precise.rerank_score >= diffuse.rerank_score,
            "precise {} vs diffuse {}",
            precise.rerank_score,
            diffuse.rerank_score
        );
    }

    #[test]
    fn empty_query_scores_zero() {
        let pruned = prune_and_rerank(1, CANDIDATE, &FeatureVec::default());
        assert_eq!(pruned.rerank_score, 0.0);
        assert!(pruned.kept_statements.is_empty());
    }

    #[test]
    fn empty_candidate_is_harmless() {
        let q = qvec("x = 1\n");
        let pruned = prune_and_rerank(1, "", &q);
        assert!(pruned.kept_statements.is_empty());
        assert_eq!(pruned.rerank_score, 0.0);
    }

    #[test]
    fn exact_match_scores_highest_and_high() {
        let q = qvec(CANDIDATE);
        let exact = prune_and_rerank(1, CANDIDATE, &q);
        assert!(exact.rerank_score >= 0.99, "score {}", exact.rerank_score);
        let other = prune_and_rerank(
            2,
            "def g(p):\n    with open(p) as fh:\n        return fh.read()\n",
            &q,
        );
        assert!(exact.rerank_score > other.rerank_score);
    }

    #[test]
    fn merge_is_sorted_sum() {
        let a = FeatureVec {
            items: vec![(1, 2.0), (5, 1.0)],
        };
        let b = FeatureVec {
            items: vec![(1, 1.0), (3, 4.0)],
        };
        let m = merge(&a, &b);
        assert_eq!(m.items, vec![(1, 3.0), (3, 4.0), (5, 1.0)]);
    }

    #[test]
    fn kept_vecs_parallel_to_statements() {
        let q = qvec(CANDIDATE);
        let pruned = prune_and_rerank(1, CANDIDATE, &q);
        assert_eq!(pruned.kept_statements.len(), pruned.kept_vecs.len());
        assert!(!pruned.kept_statements.is_empty());
    }
}
