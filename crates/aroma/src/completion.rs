//! Code completion from structural recommendations.
//!
//! The paper presents Laminar as offering "context-aware code completions"
//! (§III, §V): the developer has typed the beginning of a PE; the system
//! finds the most structurally-similar registered PE and suggests the part
//! the developer has *not yet typed*. This module derives that suggestion:
//! the candidate's statement granules whose features the snippet does not
//! already cover, in source order.

use crate::prune::{granulated_vec, statement_granules};
use spt::FeatureVec;

/// A completion suggestion derived from one candidate PE.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Statements the snippet does not cover yet, in source order.
    pub lines: Vec<String>,
    /// Fraction of the candidate already covered by the snippet (how far
    /// along the developer is).
    pub progress: f32,
}

/// How much of a granule must be covered by the snippet for it to count
/// as "already typed".
const COVERED_THRESHOLD: f32 = 0.6;

/// Complete `snippet` using `candidate_code`: return the candidate's
/// statements that the snippet has not typed yet.
pub fn complete_from(snippet: &str, candidate_code: &str) -> Completion {
    let snippet_vec = granulated_vec(snippet);
    let granules = statement_granules(candidate_code);
    if granules.is_empty() {
        return Completion {
            lines: Vec::new(),
            progress: 0.0,
        };
    }
    let mut lines = Vec::new();
    let mut covered = 0usize;
    for (text, vec) in &granules {
        if is_covered(vec, &snippet_vec) {
            covered += 1;
        } else {
            lines.push(text.clone());
        }
    }
    Completion {
        progress: covered as f32 / granules.len() as f32,
        lines,
    }
}

fn is_covered(granule: &FeatureVec, snippet: &FeatureVec) -> bool {
    if granule.is_empty() {
        return true;
    }
    granule.containment_in(snippet) >= COVERED_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUM_PE: &str = "\
class SumPE(IterativePE):
    def _process(self, data):
        total = 0
        for item in data:
            total += item
        return total
";

    #[test]
    fn completes_the_untyped_remainder() {
        let snippet = "class SumPE(IterativePE):\n    def _process(self, data):\n        total = 0\n        for item in data:\n";
        let c = complete_from(snippet, SUM_PE);
        let joined = c.lines.join("\n");
        assert!(joined.contains("total += item"), "{joined}");
        assert!(joined.contains("return total"), "{joined}");
        // Already-typed statements are not suggested again.
        assert!(!joined.contains("total = 0"), "{joined}");
        assert!(c.progress > 0.3, "progress {}", c.progress);
    }

    #[test]
    fn full_snippet_needs_nothing() {
        let c = complete_from(SUM_PE, SUM_PE);
        assert!(c.lines.is_empty(), "{:?}", c.lines);
        assert!((c.progress - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_snippet_suggests_everything() {
        let c = complete_from("", SUM_PE);
        assert!(!c.lines.is_empty());
        assert_eq!(c.progress, 0.0);
        assert!(c.lines[0].contains("class SumPE") || c.lines[0].contains("def _process"));
    }

    #[test]
    fn empty_candidate_is_harmless() {
        let c = complete_from("x = 1\n", "");
        assert!(c.lines.is_empty());
        assert_eq!(c.progress, 0.0);
    }

    #[test]
    fn renamed_snippet_still_matches_structure() {
        // The developer used different names; structural coverage should
        // still recognise the typed part.
        let snippet = "class MyPE(IterativePE):\n    def _process(self, xs):\n        acc = 0\n        for v in xs:\n";
        let c = complete_from(snippet, SUM_PE);
        let joined = c.lines.join("\n");
        assert!(joined.contains("return"), "{joined}");
        assert!(c.progress > 0.0);
    }
}
