//! Recommendation creation (Aroma stage 5).
//!
//! Each cluster becomes one recommendation: the seed snippet's kept
//! statements, filtered to those *supported* by enough other cluster
//! members (a member supports a statement when it kept a structurally
//! similar statement of its own). Intersecting this way removes
//! seed-specific noise while preserving the common idiom the cluster
//! embodies — exactly the "prunes a snippet against others in its cluster"
//! step of the paper's Fig. 3.

use crate::cluster::Cluster;
use crate::prune::PrunedSnippet;

/// Statement-similarity threshold for support counting.
const STMT_SIM: f32 = 0.7;

/// Intersect the cluster's snippets into recommendation text (one kept
/// statement per line). `min_support` is the number of members (including
/// the seed) that must contain a similar statement; it is clamped to the
/// cluster size and to at least 1.
pub fn create_recommendation(
    pruned: &[PrunedSnippet],
    cluster: &Cluster,
    min_support: usize,
) -> String {
    let Some(seed_ix) = cluster.seed() else {
        return String::new();
    };
    let seed = &pruned[seed_ix];
    let need = min_support.clamp(1, cluster.len());
    let mut lines = Vec::new();
    for (si, svec) in seed.kept_vecs.iter().enumerate() {
        let mut support = 0usize;
        for &m in &cluster.members {
            let member = &pruned[m];
            let supported = member
                .kept_vecs
                .iter()
                .any(|mv| svec.cosine(mv) >= STMT_SIM);
            if supported {
                support += 1;
            }
        }
        if support >= need {
            lines.push(seed.kept_statements[si].clone());
        }
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster_results;
    use crate::prune::prune_and_rerank;

    fn pruned_of(id: u64, code: &str, query: &str) -> PrunedSnippet {
        let q = crate::prune::granulated_vec(query);
        prune_and_rerank(id, code, &q)
    }

    #[test]
    fn common_idiom_survives_intersection() {
        let query = "total = 0\nfor item in data:\n    total += item\n";
        // Both members share the accumulate idiom; only the seed logs.
        let a = pruned_of(
            1,
            "total = 0\nfor item in data:\n    total += item\nlogger.warn(total)\n",
            query,
        );
        let b = pruned_of(2, "acc = 0\nfor x in data:\n    acc += x\n", query);
        let clusters = cluster_results(&[a.clone(), b.clone()], 0.3);
        assert_eq!(clusters.len(), 1);
        let rec = create_recommendation(&[a, b], &clusters[0], 2);
        assert!(rec.contains("total"), "{rec}");
        assert!(rec.contains("for"), "{rec}");
        assert!(!rec.contains("logger"), "{rec}");
    }

    #[test]
    fn singleton_cluster_returns_seed_statements() {
        let query = "x = f(y)\n";
        let a = pruned_of(1, "x = f(y)\n", query);
        let cluster = Cluster { members: vec![0] };
        let rec = create_recommendation(&[a], &cluster, 2); // clamped to 1
        assert!(rec.contains('f'), "{rec}");
    }

    #[test]
    fn empty_cluster_is_empty_string() {
        let cluster = Cluster { members: vec![] };
        assert_eq!(create_recommendation(&[], &cluster, 1), "");
    }

    #[test]
    fn min_support_zero_clamps_to_one() {
        let query = "x = 1\n";
        let a = pruned_of(1, "x = 1\n", query);
        let cluster = Cluster { members: vec![0] };
        let rec = create_recommendation(&[a], &cluster, 0);
        assert!(!rec.is_empty());
    }
}
