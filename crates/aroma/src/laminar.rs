//! Laminar 2.0's simplified structural search (paper §VI-A).
//!
//! "Unlike the original Aroma algorithm, our implementation uses cosine
//! similarity for efficiency, simplicity, and scalability, without the need
//! for complex clustering or reranking steps. By default, laminar returns
//! up to five PEs with a similarity score above 6.0, a configurable
//! parameter."
//!
//! A score threshold of 6.0 only makes sense on the *unnormalised* overlap
//! scale (cosine is ≤ 1), so the searcher scores by feature overlap —
//! cosine over raw count vectors is available via [`Metric::Cosine`] with a
//! 0–1 threshold for the ablation experiments.

use spt::{FeatureVec, Spt};

/// Scoring metric for the simplified searcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Multiset feature overlap (the paper's default scale; threshold 6.0).
    Overlap,
    /// Normalised cosine in [0, 1] (threshold e.g. 0.6).
    Cosine,
}

/// One hit from the simplified searcher.
#[derive(Debug, Clone, PartialEq)]
pub struct SptHit {
    pub id: u64,
    pub score: f32,
}

/// Stored-embedding searcher: the registry hands it `(id, sptEmbedding)`
/// pairs; queries are parsed and featurised on the fly.
pub struct SptSearcher {
    entries: Vec<(u64, FeatureVec)>,
    pub metric: Metric,
    /// Minimum score for a hit (paper default 6.0 on the overlap scale).
    pub min_score: f32,
    /// Maximum hits returned (paper default 5).
    pub top_n: usize,
}

impl Default for SptSearcher {
    fn default() -> Self {
        SptSearcher {
            entries: Vec::new(),
            metric: Metric::Overlap,
            min_score: 6.0,
            top_n: 5,
        }
    }
}

impl SptSearcher {
    pub fn new(metric: Metric, min_score: f32, top_n: usize) -> Self {
        SptSearcher {
            entries: Vec::new(),
            metric,
            min_score,
            top_n,
        }
    }

    /// Register a stored embedding.
    pub fn add(&mut self, id: u64, embedding: FeatureVec) {
        self.entries.push((id, embedding));
    }

    /// Featurise `code` and register it.
    pub fn add_code(&mut self, id: u64, code: &str) {
        self.add(id, Spt::parse_source(code).feature_vec());
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Search with a code-snippet query.
    pub fn search(&self, query_code: &str) -> Vec<SptHit> {
        self.search_vec(&Spt::parse_source(query_code).feature_vec())
    }

    /// Search with a pre-computed query embedding.
    pub fn search_vec(&self, qvec: &FeatureVec) -> Vec<SptHit> {
        if qvec.is_empty() {
            return Vec::new();
        }
        let mut hits: Vec<SptHit> = self
            .entries
            .iter()
            .map(|(id, v)| SptHit {
                id: *id,
                score: match self.metric {
                    Metric::Overlap => qvec.overlap(v),
                    Metric::Cosine => qvec.cosine(v),
                },
            })
            .filter(|h| h.score >= self.min_score)
            .collect();
        hits.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        hits.truncate(self.top_n);
        hits
    }

    /// Search without the threshold/top-n cuts — the evaluation harness
    /// needs full rankings for precision-recall sweeps.
    pub fn rank_all(&self, query_code: &str) -> Vec<SptHit> {
        let qvec = Spt::parse_source(query_code).feature_vec();
        let mut hits: Vec<SptHit> = self
            .entries
            .iter()
            .map(|(id, v)| SptHit {
                id: *id,
                score: match self.metric {
                    Metric::Overlap => qvec.overlap(v),
                    Metric::Cosine => qvec.cosine(v),
                },
            })
            .collect();
        hits.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        hits
    }
}

/// Workflow-level recommendation (paper §VI-A, Fig. 9): similar PEs are
/// found first, then workflows containing those PEs are ranked by the sum
/// of their member-PE scores ("occurrences").
pub struct LaminarRecommender {
    pub searcher: SptSearcher,
    /// `(workflow id, member PE ids)` associations.
    workflows: Vec<(u64, Vec<u64>)>,
}

/// A workflow recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowHit {
    pub workflow_id: u64,
    /// Number of member PEs that matched the query.
    pub occurrences: usize,
    /// Sum of matching member scores.
    pub score: f32,
}

impl LaminarRecommender {
    pub fn new(searcher: SptSearcher) -> Self {
        LaminarRecommender {
            searcher,
            workflows: Vec::new(),
        }
    }

    pub fn add_workflow(&mut self, workflow_id: u64, pe_ids: Vec<u64>) {
        self.workflows.push((workflow_id, pe_ids));
    }

    /// Recommend PEs for a code snippet.
    pub fn recommend_pes(&self, query_code: &str) -> Vec<SptHit> {
        self.searcher.search(query_code)
    }

    /// Recommend workflows for a code snippet.
    pub fn recommend_workflows(&self, query_code: &str) -> Vec<WorkflowHit> {
        let pe_hits = self.searcher.search(query_code);
        if pe_hits.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<WorkflowHit> = self
            .workflows
            .iter()
            .filter_map(|(wid, pes)| {
                let matching: Vec<&SptHit> =
                    pe_hits.iter().filter(|h| pes.contains(&h.id)).collect();
                if matching.is_empty() {
                    return None;
                }
                Some(WorkflowHit {
                    workflow_id: *wid,
                    occurrences: matching.len(),
                    score: matching.iter().map(|h| h.score).sum(),
                })
            })
            .collect();
        out.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.workflow_id.cmp(&b.workflow_id))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRODUCER: &str = "class NumberProducer(ProducerPE):\n    def _process(self, inputs):\n        return random.randint(1, 1000)\n";
    const ISPRIME: &str = "class IsPrime(IterativePE):\n    def _process(self, num):\n        if all(num % i != 0 for i in range(2, num)):\n            return num\n";
    const PRINTER: &str = "class PrintPrime(ConsumerPE):\n    def _process(self, num):\n        print('the num {} is prime'.format(num))\n";

    fn searcher() -> SptSearcher {
        let mut s = SptSearcher::default();
        s.add_code(172, PRODUCER);
        s.add_code(166, ISPRIME);
        s.add_code(168, PRINTER);
        s
    }

    #[test]
    fn fig9_pe_recommendation() {
        // Paper Fig. 9: query "random.randint(1, 1000)" → NumberProducer,
        // score 8.0 in the paper's run; ours must clear the 6.0 threshold.
        let hits = searcher().search("random.randint(1, 1000)");
        assert!(!hits.is_empty());
        assert_eq!(hits[0].id, 172);
        assert!(hits[0].score >= 6.0, "score {}", hits[0].score);
    }

    #[test]
    fn threshold_filters_weak_matches() {
        let mut s = searcher();
        s.min_score = 1e9;
        assert!(s.search("random.randint(1, 1000)").is_empty());
    }

    #[test]
    fn top_n_enforced() {
        let mut s = SptSearcher {
            top_n: 2,
            min_score: 0.1,
            ..SptSearcher::default()
        };
        for i in 0..10 {
            s.add_code(i, &format!("def f{i}(x):\n    return x + {i}\n"));
        }
        let hits = s.search("def f(x):\n    return x + 1\n");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn cosine_metric_scores_in_unit_interval() {
        let mut s = SptSearcher::new(Metric::Cosine, 0.1, 5);
        s.add_code(1, ISPRIME);
        s.add_code(2, PRODUCER);
        let hits = s.search(ISPRIME);
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].score > 0.99 && hits[0].score <= 1.0 + 1e-6);
    }

    #[test]
    fn rank_all_ignores_cuts() {
        let s = searcher();
        let ranked = s.rank_all("random.randint(1, 1000)");
        assert_eq!(ranked.len(), 3, "all entries ranked, no threshold");
    }

    #[test]
    fn empty_query_and_empty_index() {
        let s = searcher();
        assert!(s.search("").is_empty());
        let empty = SptSearcher::default();
        assert!(empty.search("x = 1\n").is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn fig9_workflow_recommendation() {
        // Paper Fig. 9 bottom half: the isprime workflow is recommended for
        // the same query because it contains NumberProducer.
        let mut r = LaminarRecommender::new(searcher());
        r.add_workflow(169, vec![172, 166, 168]);
        r.add_workflow(200, vec![166, 168]); // workflow without the producer
        let hits = r.recommend_workflows("random.randint(1, 1000)");
        assert!(!hits.is_empty());
        assert_eq!(hits[0].workflow_id, 169);
        assert_eq!(hits[0].occurrences, 1);
        // The producer-less workflow may be absent entirely.
        assert!(hits
            .iter()
            .all(|h| h.workflow_id != 200 || h.occurrences > 0));
    }

    #[test]
    fn workflow_ranking_by_total_score() {
        let mut s = SptSearcher {
            min_score: 0.5,
            ..SptSearcher::default()
        };
        s.add_code(1, ISPRIME);
        s.add_code(2, PRINTER);
        let mut r = LaminarRecommender::new(s);
        r.add_workflow(10, vec![1]);
        r.add_workflow(20, vec![1, 2]);
        let hits = r.recommend_workflows(ISPRIME);
        // Workflow 20 contains everything 10 does plus more matches.
        assert_eq!(hits[0].workflow_id, 20, "{hits:?}");
        assert!(hits[0].score >= hits[1].score);
    }
}
