//! Snippet index: featurisation + light-weight search (Aroma stages 1–2).
//!
//! Every added snippet is parsed to an SPT and reduced to a sparse feature
//! vector; the search stage scores the query vector against every stored
//! vector. With sorted sparse vectors this is the row-wise form of the
//! "matrix multiplication" the paper's Fig. 3 describes, and it
//! parallelises embarrassingly with rayon for large corpora.

use rayon::prelude::*;
use spt::{FeatureVec, Spt};
use std::collections::HashMap;

/// Registry-wide identifier of an indexed snippet.
pub type SnippetId = u64;

/// A code snippet to index (typically one PE class or one function).
#[derive(Debug, Clone)]
pub struct Snippet {
    pub id: SnippetId,
    pub name: String,
    pub code: String,
}

impl Snippet {
    pub fn new(id: SnippetId, name: impl Into<String>, code: impl Into<String>) -> Self {
        Snippet {
            id,
            name: name.into(),
            code: code.into(),
        }
    }
}

/// A search hit with its retrieval score (feature overlap).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredSnippet {
    pub id: SnippetId,
    pub score: f32,
}

#[derive(Clone)]
struct Entry {
    snippet: Snippet,
    vec: FeatureVec,
}

/// The in-memory structural index. `Clone` so a server can publish it in
/// an Arc-snapshot RCU state and mutate through `Arc::make_mut`.
#[derive(Default, Clone)]
pub struct SnippetIndex {
    entries: Vec<Entry>,
    /// id → slot in `entries`, for O(1) lookup/upsert/remove.
    by_id: HashMap<SnippetId, usize>,
}

impl SnippetIndex {
    pub fn new() -> Self {
        SnippetIndex::default()
    }

    /// Parse, featurise and store a snippet, replacing any entry with the
    /// same id. Returns the number of distinct features extracted (0 for
    /// unparseable/empty code — still indexed so ids stay dense, but it
    /// can never be retrieved).
    pub fn add(&mut self, snippet: Snippet) -> usize {
        let vec = Spt::parse_source(&snippet.code).feature_vec();
        let n = vec.len();
        self.insert_entry(Entry { snippet, vec });
        n
    }

    /// Insert or replace by id (alias of [`add`](Self::add), named for the
    /// registry-lockstep call sites).
    pub fn upsert(&mut self, snippet: Snippet) -> usize {
        self.add(snippet)
    }

    /// Remove by id (swap-remove). Returns `true` when present.
    pub fn remove(&mut self, id: SnippetId) -> bool {
        let Some(ix) = self.by_id.remove(&id) else {
            return false;
        };
        self.entries.swap_remove(ix);
        if ix < self.entries.len() {
            self.by_id.insert(self.entries[ix].snippet.id, ix);
        }
        true
    }

    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_id.clear();
    }

    fn insert_entry(&mut self, e: Entry) {
        match self.by_id.get(&e.snippet.id) {
            Some(&ix) => self.entries[ix] = e,
            None => {
                self.by_id.insert(e.snippet.id, self.entries.len());
                self.entries.push(e);
            }
        }
    }

    /// Bulk-add with parallel featurisation. Order of ids is preserved
    /// (later duplicates replace earlier ones, like serial `add`).
    pub fn add_batch(&mut self, snippets: Vec<Snippet>) {
        let entries: Vec<Entry> = snippets
            .into_par_iter()
            .map(|snippet| {
                let vec = Spt::parse_source(&snippet.code).feature_vec();
                Entry { snippet, vec }
            })
            .collect();
        for e in entries {
            self.insert_entry(e);
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, id: SnippetId) -> Option<&Snippet> {
        self.by_id.get(&id).map(|&ix| &self.entries[ix].snippet)
    }

    pub fn feature_vec_of(&self, id: SnippetId) -> Option<&FeatureVec> {
        self.by_id.get(&id).map(|&ix| &self.entries[ix].vec)
    }

    /// Retrieve the `top_n` snippets by feature overlap with `query_code`.
    /// Ties break towards lower ids so results are deterministic.
    pub fn search(&self, query_code: &str, top_n: usize) -> Vec<ScoredSnippet> {
        let qvec = Spt::parse_source(query_code).feature_vec();
        self.search_vec(&qvec, top_n)
    }

    /// Same, with a pre-computed query vector.
    pub fn search_vec(&self, qvec: &FeatureVec, top_n: usize) -> Vec<ScoredSnippet> {
        if qvec.is_empty() || self.entries.is_empty() || top_n == 0 {
            return Vec::new();
        }
        let mut scored: Vec<ScoredSnippet> = if self.entries.len() >= 256 {
            self.entries
                .par_iter()
                .map(|e| ScoredSnippet {
                    id: e.snippet.id,
                    score: qvec.overlap(&e.vec),
                })
                .filter(|s| s.score > 0.0)
                .collect()
        } else {
            self.entries
                .iter()
                .map(|e| ScoredSnippet {
                    id: e.snippet.id,
                    score: qvec.overlap(&e.vec),
                })
                .filter(|s| s.score > 0.0)
                .collect()
        };
        scored.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        scored.truncate(top_n);
        scored
    }

    /// Retrieval restricted to `ids` (the LSH candidate set). Same
    /// scoring, filtering and ordering as [`search_vec`](Self::search_vec);
    /// unknown ids are skipped.
    pub fn search_vec_among(
        &self,
        qvec: &FeatureVec,
        ids: &[SnippetId],
        top_n: usize,
    ) -> Vec<ScoredSnippet> {
        if qvec.is_empty() || ids.is_empty() || top_n == 0 {
            return Vec::new();
        }
        let mut scored: Vec<ScoredSnippet> = ids
            .iter()
            .filter_map(|id| {
                let ix = *self.by_id.get(id)?;
                let score = qvec.overlap(&self.entries[ix].vec);
                if score > 0.0 {
                    Some(ScoredSnippet { id: *id, score })
                } else {
                    None
                }
            })
            .collect();
        scored.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        scored.truncate(top_n);
        scored
    }

    /// Iterate over all snippet ids, in slab order (insertion order until
    /// the first remove).
    pub fn ids(&self) -> impl Iterator<Item = SnippetId> + '_ {
        self.entries.iter().map(|e| e.snippet.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_index() -> SnippetIndex {
        let mut ix = SnippetIndex::new();
        ix.add(Snippet::new(
            1,
            "SumPE",
            "def process(self, data):\n    total = 0\n    for item in data:\n        total += item\n    return total\n",
        ));
        ix.add(Snippet::new(
            2,
            "ReadPE",
            "def process(self, path):\n    with open(path) as fh:\n        return fh.read()\n",
        ));
        ix.add(Snippet::new(
            3,
            "MaxPE",
            "def process(self, data):\n    best = None\n    for item in data:\n        if best is None or item > best:\n            best = item\n    return best\n",
        ));
        ix
    }

    #[test]
    fn exact_code_ranks_first() {
        let ix = demo_index();
        let q = ix.get(2).unwrap().code.clone();
        let hits = ix.search(&q, 3);
        assert_eq!(hits[0].id, 2);
        assert!(hits[0].score > hits.get(1).map(|h| h.score).unwrap_or(0.0));
    }

    #[test]
    fn loop_query_prefers_loop_snippets() {
        let ix = demo_index();
        let hits = ix.search("for item in data:\n    total += item\n", 3);
        assert_eq!(hits[0].id, 1, "{hits:?}");
    }

    #[test]
    fn partial_snippet_still_retrieves() {
        let ix = demo_index();
        let full = ix.get(1).unwrap().code.clone();
        let half = pyparse::drop_suffix_fraction(&full, 0.5);
        let hits = ix.search(&half, 3);
        assert_eq!(hits[0].id, 1, "{hits:?}");
    }

    #[test]
    fn empty_query_returns_nothing() {
        let ix = demo_index();
        assert!(ix.search("", 5).is_empty());
        assert!(ix.search("   \n", 5).is_empty());
    }

    #[test]
    fn top_n_zero_and_truncation() {
        let ix = demo_index();
        assert!(ix.search("for item in data: pass\n", 0).is_empty());
        let hits = ix.search("def process(self, data):\n    return data\n", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn zero_overlap_excluded() {
        let mut ix = SnippetIndex::new();
        ix.add(Snippet::new(7, "A", "import os\n"));
        let hits = ix.search("class Completely:\n    pass\n", 5);
        assert!(hits.iter().all(|h| h.score > 0.0));
    }

    #[test]
    fn deterministic_tie_break() {
        let mut ix = SnippetIndex::new();
        ix.add(Snippet::new(10, "B", "x = 1\n"));
        ix.add(Snippet::new(4, "A", "x = 1\n"));
        let hits = ix.search("x = 1\n", 2);
        assert_eq!(hits[0].id, 4, "lower id wins ties");
    }

    #[test]
    fn batch_add_matches_serial_add() {
        let snippets: Vec<Snippet> = (0..300)
            .map(|i| {
                Snippet::new(
                    i,
                    format!("S{i}"),
                    format!("def f{i}(x):\n    return x + {i}\n"),
                )
            })
            .collect();
        let mut a = SnippetIndex::new();
        for s in snippets.clone() {
            a.add(s);
        }
        let mut b = SnippetIndex::new();
        b.add_batch(snippets);
        assert_eq!(a.len(), b.len());
        let ha = a.search("def f(x):\n    return x + 5\n", 5);
        let hb = b.search("def f(x):\n    return x + 5\n", 5);
        assert_eq!(ha, hb);
    }

    #[test]
    fn unparseable_snippet_indexed_but_inert() {
        let mut ix = SnippetIndex::new();
        let n = ix.add(Snippet::new(1, "junk", ""));
        assert_eq!(n, 0);
        assert_eq!(ix.len(), 1);
        assert!(ix.search("x = 1\n", 5).is_empty());
    }

    #[test]
    fn lookup_api() {
        let ix = demo_index();
        assert_eq!(ix.get(1).unwrap().name, "SumPE");
        assert!(ix.get(99).is_none());
        assert!(ix.feature_vec_of(1).is_some());
        assert_eq!(ix.ids().count(), 3);
    }

    #[test]
    fn upsert_replaces_in_place() {
        let mut ix = demo_index();
        ix.upsert(Snippet::new(1, "SumPE", "with open(p) as fh:\n    pass\n"));
        assert_eq!(ix.len(), 3);
        assert!(ix.get(1).unwrap().code.contains("open"));
        // The accumulate loop no longer top-ranks the replaced snippet.
        let hits = ix.search("for item in data:\n    total += item\n", 3);
        assert_ne!(hits[0].id, 1, "{hits:?}");
    }

    #[test]
    fn remove_then_search_skips_removed() {
        let mut ix = demo_index();
        assert!(ix.remove(1));
        assert!(!ix.remove(1));
        assert_eq!(ix.len(), 2);
        assert!(ix.get(1).is_none());
        // The swap-removed slot still resolves the moved entry.
        assert_eq!(ix.get(3).unwrap().name, "MaxPE");
        let hits = ix.search("for item in data:\n    total += item\n", 3);
        assert!(hits.iter().all(|h| h.id != 1), "{hits:?}");
        ix.clear();
        assert!(ix.is_empty());
    }

    #[test]
    fn search_among_matches_full_search_on_same_candidates() {
        let ix = demo_index();
        let qvec = Spt::parse_source("for item in data:\n    total += item\n").feature_vec();
        let full = ix.search_vec(&qvec, 3);
        let among = ix.search_vec_among(&qvec, &[1, 2, 3, 99], 3);
        assert_eq!(full, among);
        assert!(ix.search_vec_among(&qvec, &[], 3).is_empty());
    }
}
