//! The end-to-end Aroma pipeline (paper Fig. 3): search → prune & rerank →
//! cluster → create recommendations.

use crate::cluster::cluster_results;
use crate::index::{ScoredSnippet, Snippet, SnippetIndex};
use crate::lsh::LshPrefilter;
use crate::prune::{prune_and_rerank, PrunedSnippet};
use crate::recommend::create_recommendation;
use rayon::prelude::*;
use spt::Spt;
use std::time::{Duration, Instant};

/// Tunables for the pipeline. Defaults follow the Aroma paper's spirit at
/// registry scale (the paper retrieves 1000 from millions; Laminar
/// registries are orders of magnitude smaller).
#[derive(Debug, Clone)]
pub struct AromaConfig {
    /// Candidates taken from light-weight retrieval.
    pub retrieve_n: usize,
    /// Candidates kept after rerank.
    pub rerank_keep: usize,
    /// Cosine threshold for clustering pruned snippets.
    pub cluster_sim: f32,
    /// Fraction of a cluster that must support a statement for it to be
    /// recommended (≥ 0.5 = majority).
    pub support_fraction: f32,
    /// Maximum number of recommendations returned.
    pub max_recommendations: usize,
    /// Prune/rerank switches to rayon once the retrieved candidate set
    /// has at least this many rows; below it runs serially. The parallel
    /// path is bit-identical to the serial one (per-candidate work is
    /// pure and the indexed collect preserves candidate order before the
    /// deterministic sort), so this is purely a latency knob.
    pub parallel_threshold: usize,
    /// Engage the MinHash-LSH prefilter for retrieval once the index
    /// holds at least this many snippets (0 = always full-scan).
    pub lsh_min_entries: usize,
    /// Drop retrieval candidates whose feature overlap with the query is
    /// below this (0.0 keeps every overlapping candidate).
    pub min_overlap: f32,
}

impl Default for AromaConfig {
    fn default() -> Self {
        AromaConfig {
            retrieve_n: 50,
            rerank_keep: 10,
            cluster_sim: 0.5,
            support_fraction: 0.5,
            max_recommendations: 5,
            parallel_threshold: 32,
            lsh_min_entries: 0,
            min_overlap: 0.0,
        }
    }
}

/// One recommendation produced by the pipeline.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Id of the cluster-seed snippet the code is drawn from.
    pub seed_id: u64,
    /// Name of the seed snippet.
    pub seed_name: String,
    /// Recommended code (intersected statements, one per line).
    pub code: String,
    /// Rerank score of the seed.
    pub score: f32,
    /// Raw feature-overlap of the seed at retrieval (the scale the
    /// simplified Laminar scorer — and its 6.0 threshold — lives on).
    pub retrieval_score: f32,
    /// Number of snippets in the cluster backing this recommendation.
    pub cluster_size: usize,
}

/// Per-stage telemetry of one pipeline run (feeds the server's
/// recommendation metrics row group).
#[derive(Debug, Clone, Default)]
pub struct RecoStats {
    /// Candidates surviving light-weight retrieval (and the overlap floor).
    pub retrieved: usize,
    /// Snippets kept after prune & rerank.
    pub pruned: usize,
    /// Clusters formed.
    pub clusters: usize,
    /// LSH candidate-pool size, when the prefilter engaged.
    pub lsh_candidates: Option<usize>,
    /// Whether prune/rerank ran on the rayon path.
    pub parallel: bool,
    pub retrieve: Duration,
    pub prune: Duration,
    pub cluster: Duration,
    pub intersect: Duration,
}

/// Aroma engine over a [`SnippetIndex`], with an optional MinHash-LSH
/// prefilter kept in lockstep with the index. `Clone` so a server can
/// publish it behind an Arc-snapshot RCU.
#[derive(Default, Clone)]
pub struct AromaEngine {
    index: SnippetIndex,
    lsh: Option<LshPrefilter>,
    config: AromaConfig,
}

impl AromaEngine {
    pub fn new(config: AromaConfig) -> Self {
        let lsh = (config.lsh_min_entries > 0).then(LshPrefilter::with_default_config);
        AromaEngine {
            index: SnippetIndex::new(),
            lsh,
            config,
        }
    }

    pub fn with_default_config() -> Self {
        AromaEngine::new(AromaConfig::default())
    }

    pub fn config(&self) -> &AromaConfig {
        &self.config
    }

    pub fn index(&self) -> &SnippetIndex {
        &self.index
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    pub fn add(&mut self, snippet: Snippet) {
        let id = snippet.id;
        self.index.add(snippet);
        self.lsh_insert(id);
    }

    /// Insert or replace by id (index and LSH prefilter in lockstep).
    pub fn upsert(&mut self, snippet: Snippet) {
        self.add(snippet);
    }

    pub fn add_batch(&mut self, snippets: Vec<Snippet>) {
        let ids: Vec<u64> = snippets.iter().map(|s| s.id).collect();
        self.index.add_batch(snippets);
        for id in ids {
            self.lsh_insert(id);
        }
    }

    pub fn remove(&mut self, id: u64) -> bool {
        if let Some(lsh) = &mut self.lsh {
            lsh.remove(id);
        }
        self.index.remove(id)
    }

    pub fn clear(&mut self) {
        if let Some(lsh) = &mut self.lsh {
            lsh.clear();
        }
        self.index.clear();
    }

    fn lsh_insert(&mut self, id: u64) {
        if let Some(lsh) = &mut self.lsh {
            if let Some(vec) = self.index.feature_vec_of(id) {
                lsh.insert(id, vec);
            }
        }
    }

    /// Run the full pipeline for a (possibly partial) code query.
    pub fn recommend(&self, query_code: &str) -> Vec<Recommendation> {
        self.recommend_with_stats(query_code).0
    }

    /// Full pipeline plus per-stage telemetry.
    pub fn recommend_with_stats(&self, query_code: &str) -> (Vec<Recommendation>, RecoStats) {
        let mut stats = RecoStats::default();
        let qvec = Spt::parse_source(query_code).feature_vec();
        if qvec.is_empty() {
            return (Vec::new(), stats);
        }

        // Stage 2: light-weight retrieval, LSH-prefiltered past the
        // row threshold.
        let t = Instant::now();
        let hits = match &self.lsh {
            Some(lsh)
                if self.config.lsh_min_entries > 0
                    && self.index.len() >= self.config.lsh_min_entries =>
            {
                let candidates = lsh.candidates(&qvec);
                stats.lsh_candidates = Some(candidates.len());
                self.index
                    .search_vec_among(&qvec, &candidates, self.config.retrieve_n)
            }
            _ => self.index.search_vec(&qvec, self.config.retrieve_n),
        };
        let hits: Vec<ScoredSnippet> = hits
            .into_iter()
            .filter(|h| h.score >= self.config.min_overlap)
            .collect();
        stats.retrieve = t.elapsed();
        stats.retrieved = hits.len();
        if hits.is_empty() {
            return (Vec::new(), stats);
        }

        // Stage 3: prune & rerank (each candidate reparses). Rerank
        // compares in granule space, so re-featurise the query.
        let t = Instant::now();
        let gvec = crate::prune::granulated_vec(query_code);
        let prune_one = |h: &ScoredSnippet| {
            let code = &self.index.get(h.id)?.code;
            Some((h.score, prune_and_rerank(h.id, code, &gvec)))
        };
        stats.parallel = hits.len() >= self.config.parallel_threshold;
        let mut pruned: Vec<(f32, PrunedSnippet)> = if stats.parallel {
            hits.par_iter().filter_map(prune_one).collect()
        } else {
            hits.iter().filter_map(prune_one).collect()
        };
        pruned.sort_by(|a, b| {
            b.1.rerank_score
                .partial_cmp(&a.1.rerank_score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.id.cmp(&b.1.id))
        });
        pruned.truncate(self.config.rerank_keep);
        let retrieval_scores: Vec<f32> = pruned.iter().map(|(s, _)| *s).collect();
        let pruned: Vec<PrunedSnippet> = pruned.into_iter().map(|(_, p)| p).collect();
        stats.prune = t.elapsed();
        stats.pruned = pruned.len();

        // Stage 4: cluster.
        let t = Instant::now();
        let clusters = cluster_results(&pruned, self.config.cluster_sim);
        stats.cluster = t.elapsed();
        stats.clusters = clusters.len();

        // Stage 5: intersect each cluster into a recommendation.
        let t = Instant::now();
        let mut out = Vec::new();
        for cluster in clusters.iter().take(self.config.max_recommendations) {
            let Some(seed_ix) = cluster.seed() else {
                continue;
            };
            let min_support =
                ((cluster.len() as f32) * self.config.support_fraction).ceil() as usize;
            let code = create_recommendation(&pruned, cluster, min_support.max(1));
            if code.is_empty() {
                continue;
            }
            let seed = &pruned[seed_ix];
            let seed_name = self
                .index
                .get(seed.id)
                .map(|s| s.name.clone())
                .unwrap_or_default();
            out.push(Recommendation {
                seed_id: seed.id,
                seed_name,
                code,
                score: seed.rerank_score,
                retrieval_score: retrieval_scores[seed_ix],
                cluster_size: cluster.len(),
            });
        }
        stats.intersect = t.elapsed();
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> AromaEngine {
        let mut e = AromaEngine::with_default_config();
        e.add_batch(vec![
            Snippet::new(
                1,
                "SumPE",
                "class SumPE(IterativePE):\n    def _process(self, data):\n        total = 0\n        for item in data:\n            total += item\n        return total\n",
            ),
            Snippet::new(
                2,
                "AvgPE",
                "class AvgPE(IterativePE):\n    def _process(self, data):\n        total = 0\n        for item in data:\n            total += item\n        return total / len(data)\n",
            ),
            Snippet::new(
                3,
                "ReadPE",
                "class ReadPE(IterativePE):\n    def _process(self, path):\n        with open(path) as fh:\n            return fh.read()\n",
            ),
            Snippet::new(
                4,
                "RandPE",
                "class RandPE(ProducerPE):\n    def _process(self, inputs):\n        return random.randint(1, 1000)\n",
            ),
        ]);
        e
    }

    #[test]
    fn paper_figure9_query() {
        // Fig. 9 of the paper: `random.randint(1, 1000)` should recommend
        // the number-producer PE.
        let recs = engine().recommend("random.randint(1, 1000)");
        assert!(!recs.is_empty());
        assert_eq!(recs[0].seed_name, "RandPE", "{recs:?}");
    }

    #[test]
    fn partial_accumulator_recommends_sum_family() {
        let recs = engine().recommend("total = 0\nfor item in data:");
        assert!(!recs.is_empty());
        assert!(
            recs[0].seed_name == "SumPE" || recs[0].seed_name == "AvgPE",
            "{recs:?}"
        );
        assert!(recs[0].code.contains("for"));
    }

    #[test]
    fn near_duplicates_collapse_into_one_cluster() {
        let recs = engine().recommend("total = 0\nfor item in data:\n    total += item\n");
        // SumPE and AvgPE share the idiom → the top recommendation's
        // cluster should contain both.
        assert!(recs[0].cluster_size >= 2, "{recs:?}");
    }

    #[test]
    fn empty_query_no_recommendations() {
        assert!(engine().recommend("").is_empty());
    }

    #[test]
    fn unrelated_query_no_recommendations() {
        let recs = engine().recommend("@@@ ###");
        assert!(recs.is_empty());
    }

    #[test]
    fn max_recommendations_respected() {
        let mut e = AromaEngine::new(AromaConfig {
            max_recommendations: 1,
            cluster_sim: 1.1, // never cluster → many clusters
            ..AromaConfig::default()
        });
        for i in 0..5 {
            e.add(Snippet::new(
                i,
                format!("PE{i}"),
                format!("def f{i}(x):\n    y = x + {i}\n    return g{i}(y)\n"),
            ));
        }
        let recs = e.recommend("def f(x):\n    y = x + 1\n    return g(y)\n");
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn scores_monotone_nonincreasing() {
        let recs = engine().recommend("total = 0\nfor item in data:\n    total += item\n");
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    fn assert_recs_identical(a: &[Recommendation], b: &[Recommendation]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.seed_id, y.seed_id);
            assert_eq!(x.seed_name, y.seed_name);
            assert_eq!(x.code, y.code);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.retrieval_score.to_bits(), y.retrieval_score.to_bits());
            assert_eq!(x.cluster_size, y.cluster_size);
        }
    }

    #[test]
    fn parallel_prune_bit_identical_to_serial() {
        let snippets: Vec<Snippet> = (0..64)
            .map(|i| {
                Snippet::new(
                    i,
                    format!("PE{i}"),
                    format!(
                        "def f{i}(x):\n    total = 0\n    for item in x:\n        total += item + {i}\n    return total\n"
                    ),
                )
            })
            .collect();
        let mut serial = AromaEngine::new(AromaConfig {
            parallel_threshold: usize::MAX,
            retrieve_n: 64,
            ..AromaConfig::default()
        });
        serial.add_batch(snippets.clone());
        let mut parallel = AromaEngine::new(AromaConfig {
            parallel_threshold: 0,
            retrieve_n: 64,
            ..AromaConfig::default()
        });
        parallel.add_batch(snippets);
        let q = "total = 0\nfor item in x:\n    total += item\n";
        let (rs, ss) = serial.recommend_with_stats(q);
        let (rp, sp) = parallel.recommend_with_stats(q);
        assert!(!ss.parallel);
        assert!(sp.parallel);
        assert_recs_identical(&rs, &rp);
    }

    #[test]
    fn min_overlap_floor_filters_weak_candidates() {
        let e = engine();
        let q = "class NumberProducer(ProducerPE):\n    def _process(self, inputs):\n        return random.randint(1, 1000)\n";
        let all = e.recommend(q);
        assert!(!all.is_empty());
        let floor = all[0].retrieval_score;
        let mut strict = AromaEngine::new(AromaConfig {
            min_overlap: floor,
            ..AromaConfig::default()
        });
        strict.add_batch(vec![
            e.index().get(1).unwrap().clone(),
            e.index().get(2).unwrap().clone(),
            e.index().get(3).unwrap().clone(),
            e.index().get(4).unwrap().clone(),
        ]);
        let recs = strict.recommend(q);
        assert!(recs.iter().all(|r| r.retrieval_score >= floor), "{recs:?}");
    }

    #[test]
    fn lsh_prefilter_engages_past_row_threshold() {
        // The query is the indexed code verbatim: identical feature vecs
        // hash to identical MinHash signatures, so the candidate pool is
        // guaranteed (deterministically) to contain the snippet.
        let rand_pe =
            "class RandPE(ProducerPE):\n    def _process(self, inputs):\n        return random.randint(1, 1000)\n";
        let mut e = AromaEngine::new(AromaConfig {
            lsh_min_entries: 4,
            ..AromaConfig::default()
        });
        e.add(Snippet::new(1, "RandPE", rand_pe));
        // Below the threshold: full-scan retrieval, no candidate stats.
        let (_, stats) = e.recommend_with_stats(rand_pe);
        assert_eq!(stats.lsh_candidates, None);
        for i in 2..=6u64 {
            e.add(Snippet::new(
                i,
                format!("PE{i}"),
                format!("def f{i}(x):\n    return x + {i}\n"),
            ));
        }
        let (recs, stats) = e.recommend_with_stats(rand_pe);
        assert!(stats.lsh_candidates.is_some(), "{stats:?}");
        assert!(!recs.is_empty(), "{recs:?}");
        assert_eq!(recs[0].seed_name, "RandPE");
        // Mutations keep the prefilter in lockstep: removing the snippet
        // removes it from the candidate pool too.
        assert!(e.remove(1));
        let (recs, _) = e.recommend_with_stats(rand_pe);
        assert!(recs.iter().all(|r| r.seed_id != 1), "{recs:?}");
    }
}
