//! The end-to-end Aroma pipeline (paper Fig. 3): search → prune & rerank →
//! cluster → create recommendations.

use crate::cluster::cluster_results;
use crate::index::{Snippet, SnippetIndex};
use crate::prune::{prune_and_rerank, PrunedSnippet};
use crate::recommend::create_recommendation;
use rayon::prelude::*;
use spt::Spt;

/// Tunables for the pipeline. Defaults follow the Aroma paper's spirit at
/// registry scale (the paper retrieves 1000 from millions; Laminar
/// registries are orders of magnitude smaller).
#[derive(Debug, Clone)]
pub struct AromaConfig {
    /// Candidates taken from light-weight retrieval.
    pub retrieve_n: usize,
    /// Candidates kept after rerank.
    pub rerank_keep: usize,
    /// Cosine threshold for clustering pruned snippets.
    pub cluster_sim: f32,
    /// Fraction of a cluster that must support a statement for it to be
    /// recommended (≥ 0.5 = majority).
    pub support_fraction: f32,
    /// Maximum number of recommendations returned.
    pub max_recommendations: usize,
}

impl Default for AromaConfig {
    fn default() -> Self {
        AromaConfig {
            retrieve_n: 50,
            rerank_keep: 10,
            cluster_sim: 0.5,
            support_fraction: 0.5,
            max_recommendations: 5,
        }
    }
}

/// One recommendation produced by the pipeline.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Id of the cluster-seed snippet the code is drawn from.
    pub seed_id: u64,
    /// Name of the seed snippet.
    pub seed_name: String,
    /// Recommended code (intersected statements, one per line).
    pub code: String,
    /// Rerank score of the seed.
    pub score: f32,
    /// Number of snippets in the cluster backing this recommendation.
    pub cluster_size: usize,
}

/// Aroma engine over a [`SnippetIndex`].
#[derive(Default)]
pub struct AromaEngine {
    index: SnippetIndex,
    config: AromaConfig,
}

impl AromaEngine {
    pub fn new(config: AromaConfig) -> Self {
        AromaEngine {
            index: SnippetIndex::new(),
            config,
        }
    }

    pub fn with_default_config() -> Self {
        AromaEngine::new(AromaConfig::default())
    }

    pub fn config(&self) -> &AromaConfig {
        &self.config
    }

    pub fn index(&self) -> &SnippetIndex {
        &self.index
    }

    pub fn add(&mut self, snippet: Snippet) {
        self.index.add(snippet);
    }

    pub fn add_batch(&mut self, snippets: Vec<Snippet>) {
        self.index.add_batch(snippets);
    }

    /// Run the full pipeline for a (possibly partial) code query.
    pub fn recommend(&self, query_code: &str) -> Vec<Recommendation> {
        let qvec = Spt::parse_source(query_code).feature_vec();
        if qvec.is_empty() {
            return Vec::new();
        }

        // Stage 2: light-weight retrieval.
        let hits = self.index.search_vec(&qvec, self.config.retrieve_n);
        if hits.is_empty() {
            return Vec::new();
        }

        // Stage 3: prune & rerank (parallel — each candidate reparses).
        // Rerank compares in granule space, so re-featurise the query.
        let gvec = crate::prune::granulated_vec(query_code);
        let mut pruned: Vec<PrunedSnippet> = hits
            .par_iter()
            .filter_map(|h| {
                let code = &self.index.get(h.id)?.code;
                Some(prune_and_rerank(h.id, code, &gvec))
            })
            .collect();
        pruned.sort_by(|a, b| {
            b.rerank_score
                .partial_cmp(&a.rerank_score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        pruned.truncate(self.config.rerank_keep);

        // Stage 4: cluster.
        let clusters = cluster_results(&pruned, self.config.cluster_sim);

        // Stage 5: intersect each cluster into a recommendation.
        let mut out = Vec::new();
        for cluster in clusters.iter().take(self.config.max_recommendations) {
            let min_support =
                ((cluster.len() as f32) * self.config.support_fraction).ceil() as usize;
            let code = create_recommendation(&pruned, cluster, min_support.max(1));
            if code.is_empty() {
                continue;
            }
            let seed = &pruned[cluster.seed()];
            let seed_name = self
                .index
                .get(seed.id)
                .map(|s| s.name.clone())
                .unwrap_or_default();
            out.push(Recommendation {
                seed_id: seed.id,
                seed_name,
                code,
                score: seed.rerank_score,
                cluster_size: cluster.len(),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> AromaEngine {
        let mut e = AromaEngine::with_default_config();
        e.add_batch(vec![
            Snippet::new(
                1,
                "SumPE",
                "class SumPE(IterativePE):\n    def _process(self, data):\n        total = 0\n        for item in data:\n            total += item\n        return total\n",
            ),
            Snippet::new(
                2,
                "AvgPE",
                "class AvgPE(IterativePE):\n    def _process(self, data):\n        total = 0\n        for item in data:\n            total += item\n        return total / len(data)\n",
            ),
            Snippet::new(
                3,
                "ReadPE",
                "class ReadPE(IterativePE):\n    def _process(self, path):\n        with open(path) as fh:\n            return fh.read()\n",
            ),
            Snippet::new(
                4,
                "RandPE",
                "class RandPE(ProducerPE):\n    def _process(self, inputs):\n        return random.randint(1, 1000)\n",
            ),
        ]);
        e
    }

    #[test]
    fn paper_figure9_query() {
        // Fig. 9 of the paper: `random.randint(1, 1000)` should recommend
        // the number-producer PE.
        let recs = engine().recommend("random.randint(1, 1000)");
        assert!(!recs.is_empty());
        assert_eq!(recs[0].seed_name, "RandPE", "{recs:?}");
    }

    #[test]
    fn partial_accumulator_recommends_sum_family() {
        let recs = engine().recommend("total = 0\nfor item in data:");
        assert!(!recs.is_empty());
        assert!(
            recs[0].seed_name == "SumPE" || recs[0].seed_name == "AvgPE",
            "{recs:?}"
        );
        assert!(recs[0].code.contains("for"));
    }

    #[test]
    fn near_duplicates_collapse_into_one_cluster() {
        let recs = engine().recommend("total = 0\nfor item in data:\n    total += item\n");
        // SumPE and AvgPE share the idiom → the top recommendation's
        // cluster should contain both.
        assert!(recs[0].cluster_size >= 2, "{recs:?}");
    }

    #[test]
    fn empty_query_no_recommendations() {
        assert!(engine().recommend("").is_empty());
    }

    #[test]
    fn unrelated_query_no_recommendations() {
        let recs = engine().recommend("@@@ ###");
        assert!(recs.is_empty());
    }

    #[test]
    fn max_recommendations_respected() {
        let mut e = AromaEngine::new(AromaConfig {
            max_recommendations: 1,
            cluster_sim: 1.1, // never cluster → many clusters
            ..AromaConfig::default()
        });
        for i in 0..5 {
            e.add(Snippet::new(
                i,
                format!("PE{i}"),
                format!("def f{i}(x):\n    y = x + {i}\n    return g{i}(y)\n"),
            ));
        }
        let recs = e.recommend("def f(x):\n    y = x + 1\n    return g(y)\n");
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn scores_monotone_nonincreasing() {
        let recs = engine().recommend("total = 0\nfor item in data:\n    total += item\n");
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
