//! Locality-Sensitive Hashing for structural code search — the paper's
//! stated future work (§IX: "refining deep learning models, including LSH
//! for structural code"), following the direction of Senatus / DeSkew-LSH
//! (Silavong et al. 2021, cited in §VIII).
//!
//! MinHash over the SPT feature *set*: each snippet's features are
//! signature-compressed with `bands × rows` universal hash functions; a
//! query only rescoring snippets that collide with it in at least one
//! band. Retrieval quality degrades gracefully (tunable via banding) while
//! the exact-rescoring set shrinks from the whole registry to a small
//! candidate pool — the sublinear-scaling behaviour Senatus reports.

use crate::laminar::SptHit;
use spt::FeatureVec;
use std::collections::HashMap;

/// Banding configuration. `bands × rows` hash functions are evaluated per
/// snippet; more bands → higher recall, more candidates.
#[derive(Debug, Clone, Copy)]
pub struct LshConfig {
    pub bands: usize,
    pub rows: usize,
}

impl Default for LshConfig {
    fn default() -> Self {
        // 16 bands × 2 rows: collision probability s^2 per band — tuned
        // for the high-similarity matches structural search cares about.
        LshConfig { bands: 16, rows: 2 }
    }
}

/// Statistics of one search (exposed for the E14 ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LshSearchStats {
    /// Candidates that collided in ≥1 band and were exactly rescored.
    pub candidates: usize,
    /// Total indexed snippets.
    pub indexed: usize,
}

struct Entry {
    id: u64,
    vec: FeatureVec,
}

/// The MinHash-LSH index over SPT feature vectors.
pub struct LshIndex {
    config: LshConfig,
    /// Per-band buckets: band → (band signature → entry indices).
    tables: Vec<HashMap<u64, Vec<usize>>>,
    entries: Vec<Entry>,
    /// Hash-function parameters (odd multipliers + offsets).
    params: Vec<(u64, u64)>,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl LshIndex {
    pub fn new(config: LshConfig) -> Self {
        let n = config.bands * config.rows;
        let params = (0..n)
            .map(|i| {
                let a = splitmix(i as u64 * 2 + 1) | 1; // odd multiplier
                let b = splitmix(i as u64 * 2 + 2);
                (a, b)
            })
            .collect();
        LshIndex {
            tables: vec![HashMap::new(); config.bands],
            entries: Vec::new(),
            config,
            params,
        }
    }

    pub fn with_default_config() -> Self {
        LshIndex::new(LshConfig::default())
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// MinHash signature of a feature-id set.
    fn signature(&self, vec: &FeatureVec) -> Vec<u64> {
        self.params
            .iter()
            .map(|&(a, b)| {
                vec.items
                    .iter()
                    .map(|&(id, _)| splitmix(id.wrapping_mul(a).wrapping_add(b)))
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect()
    }

    /// Band keys of a signature.
    fn band_keys(&self, sig: &[u64]) -> Vec<u64> {
        (0..self.config.bands)
            .map(|band| {
                let start = band * self.config.rows;
                let mut h: u64 = 0xcbf29ce484222325 ^ band as u64;
                for &v in &sig[start..start + self.config.rows] {
                    h ^= v;
                    h = h.wrapping_mul(0x100000001b3);
                }
                h
            })
            .collect()
    }

    /// Index a snippet's SPT feature vector.
    pub fn add(&mut self, id: u64, vec: FeatureVec) {
        let sig = self.signature(&vec);
        let idx = self.entries.len();
        for (band, key) in self.band_keys(&sig).into_iter().enumerate() {
            self.tables[band].entry(key).or_default().push(idx);
        }
        self.entries.push(Entry { id, vec });
    }

    /// Search: gather band-colliding candidates, exactly rescore by
    /// feature overlap, return the top `top_n` above `min_score`.
    pub fn search(
        &self,
        query: &FeatureVec,
        top_n: usize,
        min_score: f32,
    ) -> (Vec<SptHit>, LshSearchStats) {
        if query.is_empty() || self.entries.is_empty() {
            return (
                Vec::new(),
                LshSearchStats {
                    candidates: 0,
                    indexed: self.entries.len(),
                },
            );
        }
        let sig = self.signature(query);
        let mut seen = vec![false; self.entries.len()];
        let mut candidates = Vec::new();
        for (band, key) in self.band_keys(&sig).into_iter().enumerate() {
            if let Some(bucket) = self.tables[band].get(&key) {
                for &idx in bucket {
                    if !seen[idx] {
                        seen[idx] = true;
                        candidates.push(idx);
                    }
                }
            }
        }
        let stats = LshSearchStats {
            candidates: candidates.len(),
            indexed: self.entries.len(),
        };
        let mut hits: Vec<SptHit> = candidates
            .into_iter()
            .map(|idx| SptHit {
                id: self.entries[idx].id,
                score: query.overlap(&self.entries[idx].vec),
            })
            .filter(|h| h.score >= min_score)
            .collect();
        hits.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        hits.truncate(top_n);
        (hits, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt::Spt;

    fn vec_of(code: &str) -> FeatureVec {
        Spt::parse_source(code).feature_vec()
    }

    fn demo_index() -> LshIndex {
        let mut ix = LshIndex::with_default_config();
        ix.add(1, vec_of("def f(data):\n    total = 0\n    for item in data:\n        total += item\n    return total\n"));
        ix.add(2, vec_of("def g(data):\n    acc = 0\n    for x in data:\n        acc += x\n    return acc\n"));
        ix.add(3, vec_of("def h(path):\n    with open(path) as fh:\n        return fh.read()\n"));
        ix.add(4, vec_of("class A:\n    def run(self):\n        return sorted(self.items)\n"));
        ix
    }

    #[test]
    fn exact_duplicate_always_found() {
        let ix = demo_index();
        let q = vec_of("def f(data):\n    total = 0\n    for item in data:\n        total += item\n    return total\n");
        let (hits, stats) = ix.search(&q, 5, 1.0);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].id, 1);
        assert!(stats.candidates >= 1);
        assert_eq!(stats.indexed, 4);
    }

    #[test]
    fn near_duplicate_collides() {
        // Renamed variables: identical structure → near-identical feature
        // sets → must collide in some band.
        let ix = demo_index();
        let q = vec_of("def z(data):\n    s = 0\n    for e in data:\n        s += e\n    return s\n");
        let (hits, _) = ix.search(&q, 5, 1.0);
        assert!(
            hits.iter().any(|h| h.id == 1 || h.id == 2),
            "accumulator family must be retrieved: {hits:?}"
        );
    }

    #[test]
    fn candidates_subset_of_index() {
        let ix = demo_index();
        let q = vec_of("with open(p) as f:\n    body = f.read()\n");
        let (hits, stats) = ix.search(&q, 5, 0.1);
        assert!(stats.candidates <= stats.indexed);
        assert!(hits.len() <= stats.candidates);
    }

    #[test]
    fn empty_query_and_empty_index() {
        let ix = demo_index();
        let (hits, stats) = ix.search(&FeatureVec::default(), 5, 0.0);
        assert!(hits.is_empty());
        assert_eq!(stats.candidates, 0);
        let empty = LshIndex::with_default_config();
        let (hits, _) = empty.search(&vec_of("x = 1\n"), 5, 0.0);
        assert!(hits.is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn recall_against_exhaustive_on_corpus() {
        // LSH must recover most of the exhaustive top-1s on a real corpus.
        let corpus = csn_like_corpus();
        let mut ix = LshIndex::with_default_config();
        let vecs: Vec<FeatureVec> = corpus.iter().map(|c| vec_of(c)).collect();
        for (i, v) in vecs.iter().enumerate() {
            ix.add(i as u64, v.clone());
        }
        let mut found = 0;
        let mut candidate_sum = 0usize;
        for (i, v) in vecs.iter().enumerate() {
            // Exhaustive top-1 (excluding self is unnecessary: self is valid).
            let exhaustive_top = vecs
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    v.overlap(a.1)
                        .partial_cmp(&v.overlap(b.1))
                        .unwrap()
                        .then(b.0.cmp(&a.0))
                })
                .unwrap()
                .0;
            let (hits, stats) = ix.search(v, 1, 0.0);
            candidate_sum += stats.candidates;
            if hits.first().map(|h| h.id) == Some(exhaustive_top as u64) {
                found += 1;
            }
            let _ = i;
        }
        let recall = found as f64 / vecs.len() as f64;
        assert!(recall >= 0.9, "top-1 recall {recall}");
        // And it must actually prune: average candidate pool < 80% of corpus.
        let avg = candidate_sum as f64 / vecs.len() as f64;
        assert!(
            avg < vecs.len() as f64 * 0.8,
            "avg candidates {avg} of {}",
            vecs.len()
        );
    }

    fn csn_like_corpus() -> Vec<String> {
        let mut v = Vec::new();
        for i in 0..40 {
            v.push(format!(
                "def f{i}(data):\n    total{i} = {i}\n    for item in data:\n        total{i} += item * {i}\n    return total{i}\n"
            ));
            v.push(format!(
                "def g{i}(path):\n    with open(path) as fh:\n        lines{i} = fh.read()\n    return lines{i}\n"
            ));
        }
        v
    }

    #[test]
    fn more_bands_more_candidates() {
        let corpus = csn_like_corpus();
        let vecs: Vec<FeatureVec> = corpus.iter().map(|c| vec_of(c)).collect();
        let build = |bands: usize| {
            let mut ix = LshIndex::new(LshConfig { bands, rows: 4 });
            for (i, v) in vecs.iter().enumerate() {
                ix.add(i as u64, v.clone());
            }
            ix
        };
        let few = build(4);
        let many = build(32);
        let q = &vecs[0];
        let (_, s_few) = few.search(q, 5, 0.0);
        let (_, s_many) = many.search(q, 5, 0.0);
        assert!(s_many.candidates >= s_few.candidates, "{s_many:?} vs {s_few:?}");
    }
}
