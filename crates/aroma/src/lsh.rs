//! Locality-Sensitive Hashing for structural code search — the paper's
//! stated future work (§IX: "refining deep learning models, including LSH
//! for structural code"), following the direction of Senatus / DeSkew-LSH
//! (Silavong et al. 2021, cited in §VIII).
//!
//! MinHash over the SPT feature *set*: each snippet's features are
//! signature-compressed with `bands × rows` universal hash functions; a
//! query only rescoring snippets that collide with it in at least one
//! band. Retrieval quality degrades gracefully (tunable via banding) while
//! the exact-rescoring set shrinks from the whole registry to a small
//! candidate pool — the sublinear-scaling behaviour Senatus reports.

use crate::laminar::SptHit;
use spt::FeatureVec;
use std::collections::HashMap;

/// Banding configuration. `bands × rows` hash functions are evaluated per
/// snippet; more bands → higher recall, more candidates.
#[derive(Debug, Clone, Copy)]
pub struct LshConfig {
    pub bands: usize,
    pub rows: usize,
}

impl Default for LshConfig {
    fn default() -> Self {
        // 16 bands × 2 rows: collision probability s^2 per band — tuned
        // for the high-similarity matches structural search cares about.
        LshConfig { bands: 16, rows: 2 }
    }
}

/// Statistics of one search (exposed for the E14 ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LshSearchStats {
    /// Candidates that collided in ≥1 band and were exactly rescored.
    pub candidates: usize,
    /// Total indexed snippets.
    pub indexed: usize,
}

struct Entry {
    id: u64,
    vec: FeatureVec,
}

/// The MinHash-LSH index over SPT feature vectors.
pub struct LshIndex {
    config: LshConfig,
    /// Per-band buckets: band → (band signature → entry indices).
    tables: Vec<HashMap<u64, Vec<usize>>>,
    entries: Vec<Entry>,
    /// Hash-function parameters (odd multipliers + offsets).
    params: Vec<(u64, u64)>,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Universal hash parameters for `bands × rows` MinHash functions.
fn make_params(config: LshConfig) -> Vec<(u64, u64)> {
    (0..config.bands * config.rows)
        .map(|i| {
            let a = splitmix(i as u64 * 2 + 1) | 1; // odd multiplier
            let b = splitmix(i as u64 * 2 + 2);
            (a, b)
        })
        .collect()
}

/// MinHash signature of a feature-id set.
fn minhash_signature(params: &[(u64, u64)], vec: &FeatureVec) -> Vec<u64> {
    params
        .iter()
        .map(|&(a, b)| {
            vec.items
                .iter()
                .map(|&(id, _)| splitmix(id.wrapping_mul(a).wrapping_add(b)))
                .min()
                .unwrap_or(u64::MAX)
        })
        .collect()
}

/// Per-band bucket keys of a signature.
fn signature_band_keys(config: LshConfig, sig: &[u64]) -> Vec<u64> {
    (0..config.bands)
        .map(|band| {
            let start = band * config.rows;
            let mut h: u64 = 0xcbf29ce484222325 ^ band as u64;
            for &v in &sig[start..start + config.rows] {
                h ^= v;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        })
        .collect()
}

impl LshIndex {
    pub fn new(config: LshConfig) -> Self {
        LshIndex {
            tables: vec![HashMap::new(); config.bands],
            entries: Vec::new(),
            params: make_params(config),
            config,
        }
    }

    pub fn with_default_config() -> Self {
        LshIndex::new(LshConfig::default())
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// MinHash signature of a feature-id set.
    fn signature(&self, vec: &FeatureVec) -> Vec<u64> {
        minhash_signature(&self.params, vec)
    }

    /// Band keys of a signature.
    fn band_keys(&self, sig: &[u64]) -> Vec<u64> {
        signature_band_keys(self.config, sig)
    }

    /// Index a snippet's SPT feature vector.
    pub fn add(&mut self, id: u64, vec: FeatureVec) {
        let sig = self.signature(&vec);
        let idx = self.entries.len();
        for (band, key) in self.band_keys(&sig).into_iter().enumerate() {
            self.tables[band].entry(key).or_default().push(idx);
        }
        self.entries.push(Entry { id, vec });
    }

    /// Search: gather band-colliding candidates, exactly rescore by
    /// feature overlap, return the top `top_n` above `min_score`.
    pub fn search(
        &self,
        query: &FeatureVec,
        top_n: usize,
        min_score: f32,
    ) -> (Vec<SptHit>, LshSearchStats) {
        if query.is_empty() || self.entries.is_empty() {
            return (
                Vec::new(),
                LshSearchStats {
                    candidates: 0,
                    indexed: self.entries.len(),
                },
            );
        }
        let sig = self.signature(query);
        let mut seen = vec![false; self.entries.len()];
        let mut candidates = Vec::new();
        for (band, key) in self.band_keys(&sig).into_iter().enumerate() {
            if let Some(bucket) = self.tables[band].get(&key) {
                for &idx in bucket {
                    if !seen[idx] {
                        seen[idx] = true;
                        candidates.push(idx);
                    }
                }
            }
        }
        let stats = LshSearchStats {
            candidates: candidates.len(),
            indexed: self.entries.len(),
        };
        let mut hits: Vec<SptHit> = candidates
            .into_iter()
            .map(|idx| SptHit {
                id: self.entries[idx].id,
                score: query.overlap(&self.entries[idx].vec),
            })
            .filter(|h| h.score >= min_score)
            .collect();
        hits.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        hits.truncate(top_n);
        (hits, stats)
    }
}

/// A membership-only MinHash-LSH table used as a *candidate prefilter* in
/// front of an exact scan, rather than a self-contained search index like
/// [`LshIndex`].
///
/// Differences that matter for the serving path:
/// - stores no feature vectors — the caller rescores candidates against
///   its own (SoA) storage, so SPT features exist once, not twice;
/// - supports `remove`, which [`LshIndex`] does not, so it can shadow a
///   mutable registry (each entry remembers its band keys for O(bands)
///   removal);
/// - is `Clone`, so it can live inside a copy-on-write index snapshot.
#[derive(Debug, Clone)]
pub struct LshPrefilter {
    config: LshConfig,
    params: Vec<(u64, u64)>,
    /// Per-band buckets: band → (band signature → entry keys).
    tables: Vec<HashMap<u64, Vec<u64>>>,
    /// Entry key → its band keys, for removal.
    band_keys_of: HashMap<u64, Vec<u64>>,
}

impl LshPrefilter {
    pub fn new(config: LshConfig) -> Self {
        LshPrefilter {
            params: make_params(config),
            tables: vec![HashMap::new(); config.bands],
            band_keys_of: HashMap::new(),
            config,
        }
    }

    pub fn with_default_config() -> Self {
        LshPrefilter::new(LshConfig::default())
    }

    pub fn len(&self) -> usize {
        self.band_keys_of.len()
    }

    pub fn is_empty(&self) -> bool {
        self.band_keys_of.is_empty()
    }

    /// Insert (or re-insert, replacing stale band placements) an entry.
    pub fn insert(&mut self, key: u64, vec: &FeatureVec) {
        if self.band_keys_of.contains_key(&key) {
            self.remove(key);
        }
        let sig = minhash_signature(&self.params, vec);
        let bkeys = signature_band_keys(self.config, &sig);
        for (band, &bkey) in bkeys.iter().enumerate() {
            self.tables[band].entry(bkey).or_default().push(key);
        }
        self.band_keys_of.insert(key, bkeys);
    }

    /// Remove an entry; no-op if absent.
    pub fn remove(&mut self, key: u64) {
        let Some(bkeys) = self.band_keys_of.remove(&key) else {
            return;
        };
        for (band, bkey) in bkeys.into_iter().enumerate() {
            if let Some(bucket) = self.tables[band].get_mut(&bkey) {
                if let Some(pos) = bucket.iter().position(|&k| k == key) {
                    bucket.swap_remove(pos);
                }
                if bucket.is_empty() {
                    self.tables[band].remove(&bkey);
                }
            }
        }
    }

    pub fn clear(&mut self) {
        for t in &mut self.tables {
            t.clear();
        }
        self.band_keys_of.clear();
    }

    /// Keys of all entries colliding with `query` in at least one band,
    /// sorted and deduplicated. The caller rescores these exactly.
    pub fn candidates(&self, query: &FeatureVec) -> Vec<u64> {
        if query.is_empty() || self.band_keys_of.is_empty() {
            return Vec::new();
        }
        let sig = minhash_signature(&self.params, query);
        let mut out = Vec::new();
        for (band, bkey) in signature_band_keys(self.config, &sig)
            .into_iter()
            .enumerate()
        {
            if let Some(bucket) = self.tables[band].get(&bkey) {
                out.extend_from_slice(bucket);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt::Spt;

    fn vec_of(code: &str) -> FeatureVec {
        Spt::parse_source(code).feature_vec()
    }

    fn demo_index() -> LshIndex {
        let mut ix = LshIndex::with_default_config();
        ix.add(1, vec_of("def f(data):\n    total = 0\n    for item in data:\n        total += item\n    return total\n"));
        ix.add(
            2,
            vec_of(
                "def g(data):\n    acc = 0\n    for x in data:\n        acc += x\n    return acc\n",
            ),
        );
        ix.add(
            3,
            vec_of("def h(path):\n    with open(path) as fh:\n        return fh.read()\n"),
        );
        ix.add(
            4,
            vec_of("class A:\n    def run(self):\n        return sorted(self.items)\n"),
        );
        ix
    }

    #[test]
    fn exact_duplicate_always_found() {
        let ix = demo_index();
        let q = vec_of("def f(data):\n    total = 0\n    for item in data:\n        total += item\n    return total\n");
        let (hits, stats) = ix.search(&q, 5, 1.0);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].id, 1);
        assert!(stats.candidates >= 1);
        assert_eq!(stats.indexed, 4);
    }

    #[test]
    fn near_duplicate_collides() {
        // Renamed variables: identical structure → near-identical feature
        // sets → must collide in some band.
        let ix = demo_index();
        let q =
            vec_of("def z(data):\n    s = 0\n    for e in data:\n        s += e\n    return s\n");
        let (hits, _) = ix.search(&q, 5, 1.0);
        assert!(
            hits.iter().any(|h| h.id == 1 || h.id == 2),
            "accumulator family must be retrieved: {hits:?}"
        );
    }

    #[test]
    fn candidates_subset_of_index() {
        let ix = demo_index();
        let q = vec_of("with open(p) as f:\n    body = f.read()\n");
        let (hits, stats) = ix.search(&q, 5, 0.1);
        assert!(stats.candidates <= stats.indexed);
        assert!(hits.len() <= stats.candidates);
    }

    #[test]
    fn empty_query_and_empty_index() {
        let ix = demo_index();
        let (hits, stats) = ix.search(&FeatureVec::default(), 5, 0.0);
        assert!(hits.is_empty());
        assert_eq!(stats.candidates, 0);
        let empty = LshIndex::with_default_config();
        let (hits, _) = empty.search(&vec_of("x = 1\n"), 5, 0.0);
        assert!(hits.is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn recall_against_exhaustive_on_corpus() {
        // LSH must recover most of the exhaustive top-1s on a real corpus.
        let corpus = csn_like_corpus();
        let mut ix = LshIndex::with_default_config();
        let vecs: Vec<FeatureVec> = corpus.iter().map(|c| vec_of(c)).collect();
        for (i, v) in vecs.iter().enumerate() {
            ix.add(i as u64, v.clone());
        }
        let mut found = 0;
        let mut candidate_sum = 0usize;
        for (i, v) in vecs.iter().enumerate() {
            // Exhaustive top-1 (excluding self is unnecessary: self is valid).
            let exhaustive_top = vecs
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    v.overlap(a.1)
                        .partial_cmp(&v.overlap(b.1))
                        .unwrap()
                        .then(b.0.cmp(&a.0))
                })
                .unwrap()
                .0;
            let (hits, stats) = ix.search(v, 1, 0.0);
            candidate_sum += stats.candidates;
            if hits.first().map(|h| h.id) == Some(exhaustive_top as u64) {
                found += 1;
            }
            let _ = i;
        }
        let recall = found as f64 / vecs.len() as f64;
        assert!(recall >= 0.9, "top-1 recall {recall}");
        // And it must actually prune: average candidate pool < 80% of corpus.
        let avg = candidate_sum as f64 / vecs.len() as f64;
        assert!(
            avg < vecs.len() as f64 * 0.8,
            "avg candidates {avg} of {}",
            vecs.len()
        );
    }

    fn csn_like_corpus() -> Vec<String> {
        let mut v = Vec::new();
        for i in 0..40 {
            v.push(format!(
                "def f{i}(data):\n    total{i} = {i}\n    for item in data:\n        total{i} += item * {i}\n    return total{i}\n"
            ));
            v.push(format!(
                "def g{i}(path):\n    with open(path) as fh:\n        lines{i} = fh.read()\n    return lines{i}\n"
            ));
        }
        v
    }

    #[test]
    fn prefilter_candidates_match_index_collisions() {
        // The prefilter and the full index share signature + banding code,
        // so the same corpus must produce the same collision sets.
        let corpus = csn_like_corpus();
        let vecs: Vec<FeatureVec> = corpus.iter().map(|c| vec_of(c)).collect();
        let mut ix = LshIndex::with_default_config();
        let mut pf = LshPrefilter::with_default_config();
        for (i, v) in vecs.iter().enumerate() {
            ix.add(i as u64, v.clone());
            pf.insert(i as u64, v);
        }
        assert_eq!(pf.len(), vecs.len());
        for q in vecs.iter().take(10) {
            let (_, stats) = ix.search(q, 5, 0.0);
            let cands = pf.candidates(q);
            assert_eq!(cands.len(), stats.candidates);
        }
    }

    #[test]
    fn prefilter_remove_and_reinsert() {
        let vecs: Vec<FeatureVec> = csn_like_corpus().iter().map(|c| vec_of(c)).collect();
        let mut pf = LshPrefilter::with_default_config();
        for (i, v) in vecs.iter().enumerate() {
            pf.insert(i as u64, v);
        }
        let q = &vecs[0];
        assert!(pf.candidates(q).contains(&0));
        pf.remove(0);
        assert!(
            !pf.candidates(q).contains(&0),
            "removed key must not surface"
        );
        assert_eq!(pf.len(), vecs.len() - 1);
        pf.remove(0); // double-remove is a no-op
                      // Re-insert under the same key with a different vector: old band
                      // placements must be gone, only the new ones live.
        pf.insert(1, &vecs[50]);
        let cands = pf.candidates(&vecs[50]);
        assert!(cands.contains(&1));
        assert_eq!(pf.len(), vecs.len() - 1);
        pf.clear();
        assert!(pf.is_empty());
        assert!(pf.candidates(q).is_empty());
    }

    #[test]
    fn prefilter_empty_query_yields_nothing() {
        let mut pf = LshPrefilter::with_default_config();
        pf.insert(7, &vec_of("x = 1\n"));
        assert!(pf.candidates(&FeatureVec::default()).is_empty());
    }

    #[test]
    fn more_bands_more_candidates() {
        let corpus = csn_like_corpus();
        let vecs: Vec<FeatureVec> = corpus.iter().map(|c| vec_of(c)).collect();
        let build = |bands: usize| {
            let mut ix = LshIndex::new(LshConfig { bands, rows: 4 });
            for (i, v) in vecs.iter().enumerate() {
                ix.add(i as u64, v.clone());
            }
            ix
        };
        let few = build(4);
        let many = build(32);
        let q = &vecs[0];
        let (_, s_few) = few.search(q, 5, 0.0);
        let (_, s_many) = many.search(q, 5, 0.0);
        assert!(
            s_many.candidates >= s_few.candidates,
            "{s_many:?} vs {s_few:?}"
        );
    }
}
