//! Fault-tolerant enactment: supervised PE invocation, retry/dead-letter
//! policies, and a deterministic chaos harness.
//!
//! The serverless pitch (paper §III auto-provisioning, §IV dynamic process
//! allocation) assumes long-running registry-backed workflows, which makes
//! per-task failure the *normal* case, not the exceptional one — the Ripple
//! position (bounded retries + speculative re-execution for stragglers).
//! Every PE invocation therefore runs under `catch_unwind` isolation and a
//! [`FaultPolicy`]:
//!
//! * [`FaultPolicy::FailFast`] — the default; the first failure aborts the
//!   run with the same error surface earlier releases had
//!   (`GraphError::WorkerPanicked`).
//! * [`FaultPolicy::Retry`] — re-invoke up to `max_attempts` times with
//!   deterministic per-attempt jittered backoff; exhausting the budget
//!   aborts the run with `GraphError::PeFailed`.
//! * [`FaultPolicy::DeadLetter`] — after `max_attempts` the offending datum
//!   is dropped into the per-run dead-letter queue (PE name, port, datum,
//!   error, attempt count) surfaced on `RunResult::dead_letters`, and the
//!   stream keeps flowing.
//!
//! The chaos harness ([`FaultInjector`], [`ChaosPE`]) is fully
//! deterministic: all randomness is xorshift from an explicit seed, keyed
//! by datum content (or producer iteration index), never by wall clock or
//! OS entropy. Two runs with the same seed produce bit-identical
//! dead-letter sets on every mapping, including the work-stealing dynamic
//! one — which worker handles a datum varies, but the injected fate of the
//! datum does not.

use crate::data::Data;
use crate::error::GraphError;
use crate::graph::{NodeId, PEFactory, WorkflowGraph};
use crate::pe::{Context, PortSpec, PE};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What to do when a PE invocation panics (or is injected to fail).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Abort the whole run on the first failure (pre-fault-model behavior).
    #[default]
    FailFast,
    /// Re-invoke the PE on the same datum up to `max_attempts` times total,
    /// sleeping a deterministically-jittered exponential backoff between
    /// attempts. Exhausting the budget aborts the run.
    Retry { max_attempts: u32, backoff: Duration },
    /// Like `Retry`, but exhausting `max_attempts` drops the datum into the
    /// run's dead-letter queue instead of aborting.
    DeadLetter { max_attempts: u32 },
}

impl FaultPolicy {
    fn max_attempts(&self) -> u32 {
        match self {
            FaultPolicy::FailFast => 1,
            FaultPolicy::Retry { max_attempts, .. } => (*max_attempts).max(1),
            FaultPolicy::DeadLetter { max_attempts } => (*max_attempts).max(1),
        }
    }
}

/// One datum the supervisor gave up on (the dead-letter contract: enough
/// to re-enact the failing invocation offline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadLetterEntry {
    /// Display name of the PE instance (`IsPrime1`).
    pub pe: String,
    /// Input port the datum was delivered on; `None` for producer
    /// iterations and lifecycle (setup/teardown) invocations.
    pub port: Option<String>,
    /// The offending datum; `None` for producer iterations.
    pub datum: Option<Data>,
    /// Panic/error message of the final failed attempt.
    pub error: String,
    /// Number of attempts made before giving up.
    pub attempts: u32,
}

impl DeadLetterEntry {
    /// Canonical sort key so the surfaced queue is a deterministic *set*
    /// regardless of worker scheduling.
    fn sort_key(&self) -> (String, String, String, String, u32) {
        (
            self.pe.clone(),
            self.port.clone().unwrap_or_default(),
            format!("{:?}", self.datum),
            self.error.clone(),
            self.attempts,
        )
    }
}

/// Aggregate fault counters for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Failed PE invocations observed (each failed attempt counts once).
    pub faults: u64,
    /// Re-invocations performed under `Retry`/`DeadLetter`.
    pub retries: u64,
    /// Datums dropped into the dead-letter queue.
    pub dead_letters: u64,
    /// Tasks abandoned because they exceeded the per-task timeout
    /// (dynamic mapping only).
    pub task_timeouts: u64,
    /// Hung workers detached and replaced by a fresh pre-spawned one
    /// (dynamic mapping only).
    pub worker_replacements: u64,
}

impl FaultStats {
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Per-run enactment options beyond the mapping choice.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    pub fault_policy: FaultPolicy,
    /// Per-task wall-clock budget; a task still running past it is
    /// abandoned and its worker replaced. Dynamic mapping only.
    pub task_timeout: Option<Duration>,
}

/// Shared supervision state for one run: the policy, the dead-letter
/// queue, and the fault counters. One instance per enactment, shared by
/// every rank/worker.
pub(crate) struct Supervisor {
    policy: FaultPolicy,
    dlq: Mutex<Vec<DeadLetterEntry>>,
    faults: AtomicU64,
    retries: AtomicU64,
    task_timeouts: AtomicU64,
    worker_replacements: AtomicU64,
}

/// Outcome of a supervised invocation.
pub(crate) enum Supervised {
    /// The invocation succeeded; route its emissions.
    Done,
    /// The datum was dead-lettered; discard emissions and keep going.
    DeadLettered,
}

impl Supervisor {
    pub(crate) fn new(policy: FaultPolicy) -> Self {
        Supervisor {
            policy,
            dlq: Mutex::new(Vec::new()),
            faults: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            task_timeouts: AtomicU64::new(0),
            worker_replacements: AtomicU64::new(0),
        }
    }

    pub(crate) fn policy(&self) -> &FaultPolicy {
        &self.policy
    }

    /// Run one PE invocation under the policy. `attempt` must be
    /// re-runnable: it clears the caller's emission buffer before calling
    /// into the PE, so a partially-emitting failed attempt never leaks
    /// duplicates downstream.
    pub(crate) fn invoke(
        &self,
        pe: &str,
        port: Option<&str>,
        datum: Option<&Data>,
        attempt: &mut dyn FnMut(),
    ) -> Result<Supervised, GraphError> {
        let max_attempts = self.policy.max_attempts();
        let mut last_err = String::new();
        for attempt_no in 1..=max_attempts {
            match catch_unwind(AssertUnwindSafe(&mut *attempt)) {
                Ok(()) => return Ok(Supervised::Done),
                Err(p) => {
                    last_err = crate::mapping::panic_message(p);
                    self.faults.fetch_add(1, Ordering::Relaxed);
                    if attempt_no < max_attempts {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        if let FaultPolicy::Retry { backoff, .. } = &self.policy {
                            std::thread::sleep(jittered_backoff(*backoff, pe, attempt_no));
                        }
                    }
                }
            }
        }
        match &self.policy {
            FaultPolicy::FailFast => Err(GraphError::WorkerPanicked(last_err)),
            FaultPolicy::Retry { .. } => Err(GraphError::PeFailed {
                pe: pe.to_string(),
                attempts: max_attempts,
                message: last_err,
            }),
            FaultPolicy::DeadLetter { .. } => {
                self.dead_letter(pe, port, datum.cloned(), last_err, max_attempts);
                Ok(Supervised::DeadLettered)
            }
        }
    }

    /// Record a dead letter directly (used by the dynamic mapping's
    /// timeout supervisor, where the failing invocation never returns).
    pub(crate) fn dead_letter(
        &self,
        pe: &str,
        port: Option<&str>,
        datum: Option<Data>,
        error: String,
        attempts: u32,
    ) {
        self.dlq.lock().push(DeadLetterEntry {
            pe: pe.to_string(),
            port: port.map(str::to_string),
            datum,
            error,
            attempts,
        });
    }

    pub(crate) fn note_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_task_timeout(&self) {
        self.task_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_worker_replacement(&self) {
        self.worker_replacements.fetch_add(1, Ordering::Relaxed);
    }

    /// Drain the dead-letter queue in canonical (sorted) order.
    pub(crate) fn take_dead_letters(&self) -> Vec<DeadLetterEntry> {
        let mut v = std::mem::take(&mut *self.dlq.lock());
        v.sort_by_key(|e| e.sort_key());
        v
    }

    pub(crate) fn stats(&self) -> FaultStats {
        FaultStats {
            faults: self.faults.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            dead_letters: self.dlq.lock().len() as u64,
            task_timeouts: self.task_timeouts.load(Ordering::Relaxed),
            worker_replacements: self.worker_replacements.load(Ordering::Relaxed),
        }
    }
}

/// One xorshift64 step (nonzero in, nonzero out).
fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// FNV-1a, the repo's stock string hash for deterministic keying.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Exponential backoff with deterministic jitter: no wall-clock or OS
/// randomness, so same-seed chaos runs sleep identically.
fn jittered_backoff(base: Duration, pe: &str, attempt: u32) -> Duration {
    let exp = base.saturating_mul(1u32 << (attempt - 1).min(6));
    let nanos = exp.as_nanos().min(u128::from(u64::MAX)) as u64;
    if nanos == 0 {
        return Duration::ZERO;
    }
    let mut x = fnv1a(pe) ^ (u64::from(attempt)).wrapping_mul(0x9e3779b97f4a7c15);
    if x == 0 {
        x = 0x9e3779b97f4a7c15;
    }
    let jitter = xorshift64(xorshift64(x)) % (nanos / 2 + 1);
    exp + Duration::from_nanos(jitter)
}

/// Seeded deterministic fault source: a pure function from (seed, key) to
/// a uniform draw in `[0, 1)` via xorshift64. Same seed + same key → same
/// draw, on every platform, forever.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Uniform draw in `[0, 1)` for `key`.
    pub fn roll(&self, key: u64) -> f64 {
        let mut x = self.seed ^ key.wrapping_mul(0x9e3779b97f4a7c15);
        if x == 0 {
            x = self.seed;
        }
        let r = xorshift64(xorshift64(xorshift64(x)));
        (r >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Chaos plan for one wrapped PE. Rates are per-invocation probabilities,
/// evaluated in order panic → error → delay → drop over a single draw.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    pub seed: u64,
    /// Probability an invocation panics (`chaos: injected panic`).
    pub panic_rate: f64,
    /// Probability an invocation fails with an error panic
    /// (`chaos: injected error`) — distinct message, same failure path.
    pub error_rate: f64,
    /// Probability an invocation is delayed by `delay` before running.
    pub delay_rate: f64,
    pub delay: Duration,
    /// Probability the datum is silently swallowed.
    pub drop_rate: f64,
    /// How many consecutive attempts on a faulty datum fail before it
    /// succeeds; `0` means the fault is permanent. `1` models a transient
    /// fault a single retry fixes.
    pub fail_attempts: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 42,
            panic_rate: 0.0,
            error_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(1),
            drop_rate: 0.0,
            fail_attempts: 0,
        }
    }
}

enum ChaosAction {
    Panic,
    Error,
    Delay,
    Drop,
    Pass,
}

/// Wraps any PE so it panics, errors, delays, or drops on a deterministic
/// schedule. Faults are keyed by datum content (producer invocations by
/// iteration index), so the injected fate of a datum is independent of
/// which rank/worker happens to execute it.
pub struct ChaosPE {
    inner: Box<dyn PE>,
    pe_key: u64,
    cfg: ChaosConfig,
    injector: FaultInjector,
    /// Failed-attempt counts per datum key, shared across every clone and
    /// re-instantiation of this PE (worker replacement must not reset the
    /// transient-fault schedule).
    seen: Arc<Mutex<HashMap<u64, u32>>>,
}

impl ChaosPE {
    fn key_for(&self, input: &Option<(String, Data)>, iteration: u64) -> u64 {
        match input {
            Some((port, data)) => self.pe_key ^ fnv1a(port) ^ data.group_hash(),
            None => self.pe_key ^ 0x517cc1b727220a95u64.wrapping_add(iteration),
        }
    }

    fn decide(&self, key: u64) -> ChaosAction {
        let r = self.injector.roll(key);
        let c = &self.cfg;
        if r < c.panic_rate {
            ChaosAction::Panic
        } else if r < c.panic_rate + c.error_rate {
            ChaosAction::Error
        } else if r < c.panic_rate + c.error_rate + c.delay_rate {
            ChaosAction::Delay
        } else if r < c.panic_rate + c.error_rate + c.delay_rate + c.drop_rate {
            ChaosAction::Drop
        } else {
            ChaosAction::Pass
        }
    }

    /// A fault fires only while the datum's failed-attempt count is below
    /// `fail_attempts` (0 = forever), making retries meaningful.
    fn should_fail(&self, key: u64) -> bool {
        let mut seen = self.seen.lock();
        let count = seen.entry(key).or_insert(0);
        if self.cfg.fail_attempts == 0 || *count < self.cfg.fail_attempts {
            *count += 1;
            true
        } else {
            false
        }
    }
}

impl PE for ChaosPE {
    fn ports(&self) -> PortSpec {
        self.inner.ports()
    }

    fn process(&mut self, input: Option<(String, Data)>, ctx: &mut Context<'_>) {
        let key = self.key_for(&input, ctx.iteration);
        match self.decide(key) {
            ChaosAction::Panic if self.should_fail(key) => {
                panic!("chaos: injected panic (key {key:016x})");
            }
            ChaosAction::Error if self.should_fail(key) => {
                panic!("chaos: injected error (key {key:016x})");
            }
            ChaosAction::Delay => {
                std::thread::sleep(self.cfg.delay);
                self.inner.process(input, ctx);
            }
            ChaosAction::Drop => {}
            _ => self.inner.process(input, ctx),
        }
    }

    fn setup(&mut self, ctx: &mut Context<'_>) {
        self.inner.setup(ctx);
    }

    fn teardown(&mut self, ctx: &mut Context<'_>) {
        self.inner.teardown(ctx);
    }
}

/// Factory wrapper produced by [`inject_chaos`]: every instance the
/// mappings create shares one transient-fault schedule.
pub struct ChaosFactory {
    inner: Arc<dyn PEFactory>,
    cfg: ChaosConfig,
    seen: Arc<Mutex<HashMap<u64, u32>>>,
}

impl ChaosFactory {
    pub fn new(inner: Arc<dyn PEFactory>, cfg: ChaosConfig) -> Self {
        ChaosFactory {
            inner,
            cfg,
            seen: Arc::new(Mutex::new(HashMap::new())),
        }
    }
}

impl PEFactory for ChaosFactory {
    fn pe_name(&self) -> String {
        self.inner.pe_name()
    }

    fn create(&self) -> Box<dyn PE> {
        Box::new(ChaosPE {
            inner: self.inner.create(),
            pe_key: fnv1a(&self.inner.pe_name()),
            cfg: self.cfg.clone(),
            injector: FaultInjector::new(self.cfg.seed),
            seen: self.seen.clone(),
        })
    }
}

/// Replace `node`'s factory with a chaos-wrapped one.
pub fn inject_chaos(graph: &mut WorkflowGraph, node: NodeId, cfg: ChaosConfig) {
    let inner = graph.nodes[node.0].factory.clone();
    graph.nodes[node.0].factory = Arc::new(ChaosFactory::new(inner, cfg));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{run, run_with_options, Mapping, RunInput};
    use crate::monitor::OutputSink;
    use crate::workflows;

    #[test]
    fn injector_is_deterministic_and_spread() {
        let inj = FaultInjector::new(7);
        let a: Vec<f64> = (0..100).map(|k| inj.roll(k)).collect();
        let b: Vec<f64> = (0..100).map(|k| inj.roll(k)).collect();
        assert_eq!(a, b, "same seed + key must give the same draw");
        let low = a.iter().filter(|r| **r < 0.5).count();
        assert!(low > 20 && low < 80, "draws badly skewed: {low}/100 below 0.5");
        assert!(a.iter().all(|r| (0.0..1.0).contains(r)));

        let other = FaultInjector::new(8);
        let c: Vec<f64> = (0..100).map(|k| other.roll(k)).collect();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_grows() {
        let a = jittered_backoff(Duration::from_millis(10), "PE1", 1);
        let b = jittered_backoff(Duration::from_millis(10), "PE1", 1);
        assert_eq!(a, b);
        let later = jittered_backoff(Duration::from_millis(10), "PE1", 3);
        assert!(later >= Duration::from_millis(40), "{later:?}");
        assert!(a >= Duration::from_millis(10) && a <= Duration::from_millis(16));
    }

    #[test]
    fn supervisor_fail_fast_preserves_worker_panicked() {
        let sup = Supervisor::new(FaultPolicy::FailFast);
        let err = sup
            .invoke("PE0", None, None, &mut || panic!("boom"))
            .unwrap_err();
        assert_eq!(err, GraphError::WorkerPanicked("boom".into()));
        assert_eq!(sup.stats().faults, 1);
    }

    #[test]
    fn supervisor_retry_succeeds_after_transient_fault() {
        let sup = Supervisor::new(FaultPolicy::Retry {
            max_attempts: 3,
            backoff: Duration::ZERO,
        });
        let mut calls = 0;
        let out = sup.invoke("PE0", None, None, &mut || {
            calls += 1;
            if calls < 3 {
                panic!("transient");
            }
        });
        assert!(matches!(out, Ok(Supervised::Done)));
        assert_eq!(calls, 3);
        let stats = sup.stats();
        assert_eq!(stats.faults, 2);
        assert_eq!(stats.retries, 2);
    }

    #[test]
    fn supervisor_retry_exhaustion_is_typed() {
        let sup = Supervisor::new(FaultPolicy::Retry {
            max_attempts: 2,
            backoff: Duration::ZERO,
        });
        let err = sup
            .invoke("PE7", None, None, &mut || panic!("always"))
            .unwrap_err();
        match err {
            GraphError::PeFailed { pe, attempts, message } => {
                assert_eq!(pe, "PE7");
                assert_eq!(attempts, 2);
                assert_eq!(message, "always");
            }
            other => panic!("expected PeFailed, got {other:?}"),
        }
    }

    #[test]
    fn supervisor_dead_letter_records_and_continues() {
        let sup = Supervisor::new(FaultPolicy::DeadLetter { max_attempts: 2 });
        let datum = Data::from(9i64);
        let out = sup.invoke("PE3", Some("input"), Some(&datum), &mut || panic!("bad"));
        assert!(matches!(out, Ok(Supervised::DeadLettered)));
        let dlq = sup.take_dead_letters();
        assert_eq!(dlq.len(), 1);
        assert_eq!(dlq[0].pe, "PE3");
        assert_eq!(dlq[0].port.as_deref(), Some("input"));
        assert_eq!(dlq[0].datum, Some(Data::from(9i64)));
        assert_eq!(dlq[0].attempts, 2);
        assert!(dlq[0].error.contains("bad"));
    }

    #[test]
    fn failed_attempt_emissions_are_discarded() {
        // A PE that emits then panics must not leak the partial emission.
        let sup = Supervisor::new(FaultPolicy::Retry {
            max_attempts: 2,
            backoff: Duration::ZERO,
        });
        let mut emitted: Vec<i64> = Vec::new();
        let mut calls = 0;
        let out = sup.invoke("PE0", None, None, &mut || {
            emitted.clear();
            emitted.push(1);
            calls += 1;
            if calls < 2 {
                panic!("mid-emit");
            }
            emitted.push(2);
        });
        assert!(matches!(out, Ok(Supervised::Done)));
        assert_eq!(emitted, vec![1, 2], "partial first-attempt emission leaked");
    }

    #[test]
    fn chaos_pe_panics_deterministically() {
        let mut g = workflows::doubler_graph();
        inject_chaos(
            &mut g,
            NodeId(1),
            ChaosConfig {
                seed: 1234,
                panic_rate: 0.3,
                ..ChaosConfig::default()
            },
        );
        let r1 = run_with_options(
            &g,
            RunInput::Iterations(30),
            &Mapping::Simple,
            OutputSink::new(),
            &RunOptions {
                fault_policy: FaultPolicy::DeadLetter { max_attempts: 1 },
                task_timeout: None,
            },
        )
        .unwrap();
        assert!(!r1.dead_letters.is_empty(), "panic_rate 0.3 over 30 items hit nothing");
        assert!(r1.dead_letters.len() < 30, "everything faulted");
        let mut g2 = workflows::doubler_graph();
        inject_chaos(
            &mut g2,
            NodeId(1),
            ChaosConfig {
                seed: 1234,
                panic_rate: 0.3,
                ..ChaosConfig::default()
            },
        );
        let r2 = run_with_options(
            &g2,
            RunInput::Iterations(30),
            &Mapping::Simple,
            OutputSink::new(),
            &RunOptions {
                fault_policy: FaultPolicy::DeadLetter { max_attempts: 1 },
                task_timeout: None,
            },
        )
        .unwrap();
        assert_eq!(r1.dead_letters, r2.dead_letters);
        assert_eq!(r1.fault_stats, r2.fault_stats);
    }

    #[test]
    fn chaos_drop_swallows_data() {
        let mut g = workflows::doubler_graph();
        inject_chaos(
            &mut g,
            NodeId(1),
            ChaosConfig {
                seed: 5,
                drop_rate: 0.5,
                ..ChaosConfig::default()
            },
        );
        let r = run(&g, RunInput::Iterations(40), &Mapping::Simple).unwrap();
        assert!(r.lines().len() < 40, "nothing dropped");
        assert!(!r.lines().is_empty(), "everything dropped");
        assert!(r.fault_stats.is_clean(), "drops are not faults");
    }

    #[test]
    fn default_policy_is_fail_fast() {
        assert_eq!(FaultPolicy::default(), FaultPolicy::FailFast);
        assert!(RunOptions::default().task_timeout.is_none());
    }

    #[test]
    fn dead_letters_sort_canonically() {
        let sup = Supervisor::new(FaultPolicy::DeadLetter { max_attempts: 1 });
        sup.dead_letter("B", None, None, "e".into(), 1);
        sup.dead_letter("A", Some("p"), Some(Data::from(1i64)), "e".into(), 1);
        let dlq = sup.take_dead_letters();
        assert_eq!(dlq[0].pe, "A");
        assert_eq!(dlq[1].pe, "B");
    }
}
