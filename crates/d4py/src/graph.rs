//! Abstract workflow graphs (paper §II-A: "Abstract Workflow").
//!
//! A [`WorkflowGraph`] is a DAG whose nodes are PE *factories* — parallel
//! mappings instantiate one PE per assigned rank, so the graph must be able
//! to mint fresh instances — and whose edges connect named output ports to
//! named input ports with a [`Grouping`] policy.

use crate::data::Data;
use crate::error::GraphError;
use crate::pe::{NamedPE, PortSpec, PE};
use std::sync::Arc;

/// Default input port name (re-exported at crate root).
pub const INPUT: &str = crate::pe::INPUT_PORT;
/// Default output port name (re-exported at crate root).
pub const OUTPUT: &str = crate::pe::OUTPUT_PORT;

/// Node handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// How data on an edge is distributed among the target PE's ranks
/// (dispel4py's workload-allocation semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grouping {
    /// Round-robin over target ranks (dispel4py default).
    Shuffle,
    /// Route by hash of the record field `key` (or of the whole datum when
    /// the field is absent) so equal keys reach the same rank.
    GroupBy(String),
    /// Broadcast every datum to all target ranks.
    OneToAll,
    /// Send everything to the first target rank.
    AllToOne,
}

/// Factory trait: the graph stores these; mappings call [`PEFactory::create`]
/// once per assigned rank.
pub trait PEFactory: Send + Sync {
    fn pe_name(&self) -> String;
    fn create(&self) -> Box<dyn PE>;
}

/// Any `Clone`-able PE is its own factory: each rank gets a clone.
impl<P> PEFactory for P
where
    P: PE + Clone + Sync + NamedPE + 'static,
{
    fn pe_name(&self) -> String {
        NamedPE::pe_name(self)
    }

    fn create(&self) -> Box<dyn PE> {
        Box::new(self.clone())
    }
}

/// One graph node.
pub struct NodeSpec {
    pub name: String,
    pub ports: PortSpec,
    pub factory: Arc<dyn PEFactory>,
}

impl NodeSpec {
    /// Display name used in monitoring output: `IsPrime1` for node index 1
    /// (matches the paper's Fig. 5b log format).
    pub fn display_name(&self, index: usize) -> String {
        format!("{}{}", self.name, index)
    }
}

/// One edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub from: NodeId,
    pub from_port: String,
    pub to: NodeId,
    pub to_port: String,
    pub grouping: Grouping,
}

/// The abstract workflow.
pub struct WorkflowGraph {
    pub name: String,
    pub nodes: Vec<NodeSpec>,
    pub edges: Vec<Edge>,
}

impl WorkflowGraph {
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowGraph {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a PE (any `Clone`-able PE value, or a custom [`PEFactory`]).
    pub fn add<F: PEFactory + 'static>(&mut self, factory: F) -> NodeId {
        let ports = factory.create().ports();
        let name = factory.pe_name();
        self.nodes.push(NodeSpec {
            name,
            ports,
            factory: Arc::new(factory),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Connect `from.from_port → to.to_port` with shuffle grouping.
    pub fn connect(
        &mut self,
        from: NodeId,
        from_port: &str,
        to: NodeId,
        to_port: &str,
    ) -> Result<(), GraphError> {
        self.connect_grouped(from, from_port, to, to_port, Grouping::Shuffle)
    }

    /// Connect with an explicit grouping policy.
    pub fn connect_grouped(
        &mut self,
        from: NodeId,
        from_port: &str,
        to: NodeId,
        to_port: &str,
        grouping: Grouping,
    ) -> Result<(), GraphError> {
        let from_spec = self
            .nodes
            .get(from.0)
            .ok_or_else(|| GraphError::UnknownNode(format!("#{}", from.0)))?;
        if !from_spec.ports.outputs.iter().any(|p| p == from_port) {
            return Err(GraphError::UnknownPort {
                node: from_spec.name.clone(),
                port: from_port.to_string(),
            });
        }
        let to_spec = self
            .nodes
            .get(to.0)
            .ok_or_else(|| GraphError::UnknownNode(format!("#{}", to.0)))?;
        if !to_spec.ports.inputs.iter().any(|p| p == to_port) {
            return Err(GraphError::UnknownPort {
                node: to_spec.name.clone(),
                port: to_port.to_string(),
            });
        }
        self.edges.push(Edge {
            from,
            from_port: from_port.to_string(),
            to,
            to_port: to_port.to_string(),
            grouping,
        });
        Ok(())
    }

    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.0]
    }

    /// Edges leaving `id`.
    pub fn out_edges(&self, id: NodeId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.from == id).collect()
    }

    /// Edges entering `id`.
    pub fn in_edges(&self, id: NodeId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.to == id).collect()
    }

    /// Nodes with no incoming edges (the producers/roots).
    pub fn roots(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|&n| self.in_edges(n).is_empty())
            .collect()
    }

    /// Topological order; `Err(CycleDetected)` if the graph is not a DAG.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(NodeId(u));
            for e in &self.edges {
                if e.from.0 == u {
                    indeg[e.to.0] -= 1;
                    if indeg[e.to.0] == 0 {
                        queue.push(e.to.0);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::CycleDetected);
        }
        Ok(order)
    }

    /// Full validation: non-empty, has roots, acyclic.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        if self.roots().is_empty() {
            return Err(GraphError::NoRoots);
        }
        self.topo_order()?;
        Ok(())
    }

    /// dispel4py-style static rank partition for `processes` total ranks:
    /// each root (producer) PE gets exactly one rank; the remaining ranks
    /// are split as evenly as possible over the other PEs (at least one
    /// each). Returns, per node, the assigned rank range — the
    /// `{'NumberProducer': range(0, 1), 'IsPrime1': range(1, 5), …}`
    /// partition printed in Fig. 5b.
    pub fn partition(&self, processes: usize) -> Result<Vec<std::ops::Range<usize>>, GraphError> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let roots: Vec<bool> = (0..n)
            .map(|i| self.in_edges(NodeId(i)).is_empty())
            .collect();
        let n_roots = roots.iter().filter(|&&r| r).count();
        let n_rest = n - n_roots;
        let minimum = n_roots + n_rest; // one rank per PE at least
        if processes < minimum {
            return Err(GraphError::InvalidProcessCount {
                requested: processes,
                minimum,
            });
        }
        let spare = processes - minimum;
        // Distribute spare ranks round-robin over non-root PEs.
        let mut extra = vec![0usize; n];
        if let Some(per) = spare.checked_div(n_rest) {
            let rem = spare % n_rest;
            let mut k = 0;
            for (i, is_root) in roots.iter().enumerate() {
                if !is_root {
                    extra[i] = per + usize::from(k < rem);
                    k += 1;
                }
            }
        }
        let mut ranges = Vec::with_capacity(n);
        let mut next = 0usize;
        for e in &extra {
            let width = 1 + e;
            ranges.push(next..next + width);
            next += width;
        }
        Ok(ranges)
    }

    /// Render the abstract workflow as Graphviz DOT (the Fig. 1 diagram):
    /// one box per PE, labelled edges for non-default ports, dashed styles
    /// for non-shuffle groupings.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=LR;");
        let _ = writeln!(s, "  node [shape=box, style=rounded];");
        for (i, node) in self.nodes.iter().enumerate() {
            let _ = writeln!(s, "  n{i} [label=\"{}\"];", node.name);
        }
        for e in &self.edges {
            let mut attrs: Vec<String> = Vec::new();
            if e.from_port != OUTPUT || e.to_port != INPUT {
                attrs.push(format!("label=\"{}→{}\"", e.from_port, e.to_port));
            }
            match &e.grouping {
                Grouping::Shuffle => {}
                Grouping::GroupBy(k) => {
                    attrs.push(format!("style=dashed, taillabel=\"groupby {k}\""))
                }
                Grouping::OneToAll => attrs.push("style=bold, taillabel=\"all\"".into()),
                Grouping::AllToOne => attrs.push("style=dotted, taillabel=\"one\"".into()),
            }
            let attr_str = if attrs.is_empty() {
                String::new()
            } else {
                format!(" [{}]", attrs.join(", "))
            };
            let _ = writeln!(s, "  n{} -> n{}{attr_str};", e.from.0, e.to.0);
        }
        s.push_str("}\n");
        s
    }

    /// Route a datum on `edge` to target-rank offsets (0-based within the
    /// target PE's rank range). `counter` is the sender's per-edge
    /// round-robin state.
    pub fn route(edge: &Edge, data: &Data, n_targets: usize, counter: &mut usize) -> Vec<usize> {
        if n_targets == 0 {
            return Vec::new();
        }
        match &edge.grouping {
            Grouping::Shuffle => {
                let t = *counter % n_targets;
                *counter += 1;
                vec![t]
            }
            Grouping::GroupBy(key) => {
                let k = data.get(key).unwrap_or(data);
                vec![(k.group_hash() % n_targets as u64) as usize]
            }
            Grouping::OneToAll => (0..n_targets).collect(),
            Grouping::AllToOne => vec![0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::{ConsumerPE, IterativePE, ProducerPE};

    // Closure adapters need Clone to satisfy the blanket factory impl.
    // The adapters derive nothing, so implement via small wrapper structs
    // in the crate — tested here through the workflows module instead.
    use crate::workflows::{identity_pe, number_producer, print_consumer};

    fn pipeline() -> (WorkflowGraph, NodeId, NodeId, NodeId) {
        let mut g = WorkflowGraph::new("test_wf");
        let a = g.add(number_producer(100));
        let b = g.add(identity_pe("Mid"));
        let c = g.add(print_consumer("Sink"));
        g.connect(a, OUTPUT, b, INPUT).unwrap();
        g.connect(b, OUTPUT, c, INPUT).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn build_and_validate() {
        let (g, a, _, c) = pipeline();
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.edges.len(), 2);
        assert!(g.validate().is_ok());
        assert_eq!(g.roots(), vec![a]);
        assert_eq!(g.out_edges(a).len(), 1);
        assert_eq!(g.in_edges(c).len(), 1);
    }

    #[test]
    fn unknown_port_rejected() {
        let mut g = WorkflowGraph::new("w");
        let a = g.add(number_producer(10));
        let b = g.add(print_consumer("S"));
        let err = g.connect(a, "nope", b, INPUT).unwrap_err();
        assert!(matches!(err, GraphError::UnknownPort { .. }));
        let err = g.connect(a, OUTPUT, b, "nope").unwrap_err();
        assert!(matches!(err, GraphError::UnknownPort { .. }));
        // Consumers have no outputs.
        let err = g.connect(b, OUTPUT, a, INPUT).unwrap_err();
        assert!(matches!(err, GraphError::UnknownPort { .. }));
    }

    #[test]
    fn cycle_detected() {
        let mut g = WorkflowGraph::new("w");
        let a = g.add(identity_pe("A"));
        let b = g.add(identity_pe("B"));
        g.connect(a, OUTPUT, b, INPUT).unwrap();
        g.connect(b, OUTPUT, a, INPUT).unwrap();
        assert_eq!(g.topo_order().unwrap_err(), GraphError::CycleDetected);
        // A cyclic graph also has no roots.
        assert!(g.validate().is_err());
    }

    #[test]
    fn empty_graph_invalid() {
        let g = WorkflowGraph::new("w");
        assert_eq!(g.validate().unwrap_err(), GraphError::EmptyGraph);
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, a, b, c) = pipeline();
        let order = g.topo_order().unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn partition_matches_fig5b() {
        // Fig. 5b: 9 processes over NumberProducer → IsPrime → PrintPrime
        // gives {producer: 0..1, isprime: 1..5, print: 5..9}.
        let (g, _, _, _) = pipeline();
        let ranges = g.partition(9).unwrap();
        assert_eq!(ranges[0], 0..1);
        assert_eq!(ranges[1], 1..5);
        assert_eq!(ranges[2], 5..9);
    }

    #[test]
    fn partition_minimum_enforced() {
        let (g, _, _, _) = pipeline();
        assert!(g.partition(3).is_ok());
        let err = g.partition(2).unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidProcessCount {
                requested: 2,
                minimum: 3
            }
        );
    }

    #[test]
    fn partition_covers_all_ranks_contiguously() {
        let (g, _, _, _) = pipeline();
        for p in 3..12 {
            let ranges = g.partition(p).unwrap();
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(!r.is_empty());
                next = r.end;
            }
            assert_eq!(next, p);
        }
    }

    #[test]
    fn routing_policies() {
        let edge = Edge {
            from: NodeId(0),
            from_port: OUTPUT.into(),
            to: NodeId(1),
            to_port: INPUT.into(),
            grouping: Grouping::Shuffle,
        };
        let mut counter = 0;
        let d = Data::from(1i64);
        assert_eq!(WorkflowGraph::route(&edge, &d, 3, &mut counter), vec![0]);
        assert_eq!(WorkflowGraph::route(&edge, &d, 3, &mut counter), vec![1]);
        assert_eq!(WorkflowGraph::route(&edge, &d, 3, &mut counter), vec![2]);
        assert_eq!(WorkflowGraph::route(&edge, &d, 3, &mut counter), vec![0]);

        let all = Edge {
            grouping: Grouping::OneToAll,
            ..edge.clone()
        };
        assert_eq!(WorkflowGraph::route(&all, &d, 3, &mut counter), vec![0, 1, 2]);

        let one = Edge {
            grouping: Grouping::AllToOne,
            ..edge.clone()
        };
        assert_eq!(WorkflowGraph::route(&one, &d, 3, &mut counter), vec![0]);

        let by = Edge {
            grouping: Grouping::GroupBy("city".into()),
            ..edge
        };
        let r1 = Data::record([("city", Data::from("lisbon")), ("t", Data::from(1i64))]);
        let r2 = Data::record([("city", Data::from("lisbon")), ("t", Data::from(2i64))]);
        let r3 = Data::record([("city", Data::from("porto")), ("t", Data::from(3i64))]);
        let t1 = WorkflowGraph::route(&by, &r1, 4, &mut counter);
        let t2 = WorkflowGraph::route(&by, &r2, 4, &mut counter);
        let t3 = WorkflowGraph::route(&by, &r3, 4, &mut counter);
        assert_eq!(t1, t2, "same key → same rank");
        assert_eq!(t1.len(), 1);
        let _ = t3; // may or may not collide; just must be deterministic
        assert_eq!(WorkflowGraph::route(&by, &r3, 4, &mut counter), t3);
    }

    #[test]
    fn route_with_zero_targets() {
        let edge = Edge {
            from: NodeId(0),
            from_port: OUTPUT.into(),
            to: NodeId(1),
            to_port: INPUT.into(),
            grouping: Grouping::Shuffle,
        };
        let mut c = 0;
        assert!(WorkflowGraph::route(&edge, &Data::Null, 0, &mut c).is_empty());
    }

    #[test]
    fn display_name_is_indexed() {
        let (g, _, _, _) = pipeline();
        assert_eq!(g.node(NodeId(1)).display_name(1), "Mid1");
    }

    #[test]
    fn dot_rendering_covers_nodes_edges_groupings() {
        let mut g = WorkflowGraph::new("dot_wf");
        let a = g.add(number_producer(10));
        let b = g.add(identity_pe("Mid"));
        let c = g.add(print_consumer("Sink"));
        g.connect(a, OUTPUT, b, INPUT).unwrap();
        g.connect_grouped(b, OUTPUT, c, INPUT, Grouping::GroupBy("k".into()))
            .unwrap();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph \"dot_wf\""), "{dot}");
        assert!(dot.contains("n0 [label=\"Numbers\"]"), "{dot}");
        assert!(dot.contains("n0 -> n1;"), "{dot}");
        assert!(dot.contains("n1 -> n2 [style=dashed, taillabel=\"groupby k\"];"), "{dot}");
        // Balanced braces → loadable by graphviz.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn group_by_missing_key_falls_back_to_whole_datum() {
        let by = Edge {
            from: NodeId(0),
            from_port: OUTPUT.into(),
            to: NodeId(1),
            to_port: INPUT.into(),
            grouping: Grouping::GroupBy("absent".into()),
        };
        let mut c = 0;
        let d = Data::from("payload");
        let t1 = WorkflowGraph::route(&by, &d, 5, &mut c);
        let t2 = WorkflowGraph::route(&by, &d, 5, &mut c);
        assert_eq!(t1, t2);
    }

    // Quiet unused-import warnings for the adapter types used in docs.
    #[allow(dead_code)]
    fn _adapters_compile() {
        let _ = ProducerPE::new("p", |_| None::<Data>);
        let _ = IterativePE::new("i", Some);
        let _ = ConsumerPE::new("c", |_d: Data, _ctx: &mut crate::pe::Context<'_>| {});
    }
}
