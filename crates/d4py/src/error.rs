//! Error types for graph construction and enactment.

use std::fmt;

/// Errors raised while building or validating a workflow graph, or while
/// mapping it onto an execution system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Referenced node does not exist.
    UnknownNode(String),
    /// Referenced port does not exist on the node.
    UnknownPort { node: String, port: String },
    /// The graph contains a cycle (workflows must be DAGs).
    CycleDetected,
    /// The graph has no nodes.
    EmptyGraph,
    /// No producer/root PE to feed iterations into.
    NoRoots,
    /// A mapping was asked to run with an invalid process count.
    InvalidProcessCount { requested: usize, minimum: usize },
    /// A worker thread panicked during enactment.
    WorkerPanicked(String),
    /// A PE kept failing after the retry budget was exhausted.
    PeFailed {
        pe: String,
        attempts: u32,
        message: String,
    },
    /// A task exceeded the per-task execution timeout.
    TaskTimedOut { pe: String, timeout_ms: u64 },
    /// A channel peer disappeared mid-stream (its rank died without
    /// propagating end-of-stream).
    PeerDisconnected { from: String, to: String },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node '{n}'"),
            GraphError::UnknownPort { node, port } => {
                write!(f, "node '{node}' has no port '{port}'")
            }
            GraphError::CycleDetected => write!(f, "workflow graph contains a cycle"),
            GraphError::EmptyGraph => write!(f, "workflow graph is empty"),
            GraphError::NoRoots => write!(f, "workflow graph has no producer/root PE"),
            GraphError::InvalidProcessCount { requested, minimum } => write!(
                f,
                "process count {requested} is below the minimum {minimum} for this graph"
            ),
            GraphError::WorkerPanicked(msg) => write!(f, "worker thread panicked: {msg}"),
            GraphError::PeFailed {
                pe,
                attempts,
                message,
            } => write!(f, "PE '{pe}' failed after {attempts} attempts: {message}"),
            GraphError::TaskTimedOut { pe, timeout_ms } => {
                write!(f, "task on PE '{pe}' exceeded the {timeout_ms} ms timeout")
            }
            GraphError::PeerDisconnected { from, to } => {
                write!(f, "channel peer lost: '{from}' could not reach '{to}'")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(GraphError::UnknownNode("X".into()).to_string().contains("'X'"));
        assert!(GraphError::CycleDetected.to_string().contains("cycle"));
        let e = GraphError::InvalidProcessCount {
            requested: 1,
            minimum: 3,
        };
        assert!(e.to_string().contains('1') && e.to_string().contains('3'));
    }
}
