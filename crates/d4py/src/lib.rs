//! `d4py` — a dispel4py-style parallel stream-based dataflow engine
//! (paper §II-A, Fig. 1).
//!
//! dispel4py programs are directed acyclic graphs of **Processing Elements
//! (PEs)** connected by named, typed data streams. Users describe an
//! *abstract* workflow; the engine maps it onto an execution system — the
//! *concrete* workflow — according to a chosen **mapping** and process
//! count. This crate reproduces that contract:
//!
//! * [`pe`] — the PE abstraction: a [`pe::PE`] trait plus the dispel4py
//!   convenience families (`IterativePE`, `ProducerPE`, `ConsumerPE`,
//!   `GenericPE`) built from closures;
//! * [`graph`] — abstract workflow graphs with ports, grouping semantics
//!   and DAG validation;
//! * [`mapping::simple`] — sequential enactment (dispel4py's *simple*
//!   mapping);
//! * [`mapping::multi`] — static workload distribution over OS threads with
//!   crossbeam channels (dispel4py's *multiprocessing* mapping; Fig. 5b's
//!   `{'NumberProducer': range(0, 1), 'IsPrime1': range(1, 5), …}` rank
//!   partition);
//! * [`mapping::dynamic`] — dynamic workload allocation through a shared
//!   work queue with autoscaling workers (dispel4py's *Redis* mapping,
//!   Liang et al. 2022), simulated in-process;
//! * [`monitor`] — per-rank iteration counts and the captured output
//!   stream ("IsPrime1 (rank 1): Processed 3 iterations.").
//!
//! # Quickstart
//!
//! ```
//! use d4py::prelude::*;
//!
//! let mut g = WorkflowGraph::new("doubler_wf");
//! let src = g.add(ProducerPE::new("Numbers", |i| Some(Data::from(i as i64))));
//! let dbl = g.add(IterativePE::new("Double", |d| {
//!     Some(Data::from(d.as_int().unwrap_or(0) * 2))
//! }));
//! let sink = g.add(ConsumerPE::new("Print", |d, ctx| {
//!     ctx.log(format!("got {d}"));
//! }));
//! g.connect(src, OUTPUT, dbl, INPUT).unwrap();
//! g.connect(dbl, OUTPUT, sink, INPUT).unwrap();
//!
//! let result = run(&g, RunInput::Iterations(5), &Mapping::Simple).unwrap();
//! assert_eq!(result.lines().len(), 5);
//! assert!(result.lines()[0].starts_with("got"));
//! ```

pub mod data;
pub mod error;
pub mod fault;
pub mod graph;
pub mod mapping;
pub mod monitor;
pub mod pe;
pub mod workflows;

pub use data::Data;
pub use error::GraphError;
pub use fault::{
    inject_chaos, ChaosConfig, ChaosFactory, ChaosPE, DeadLetterEntry, FaultInjector, FaultPolicy,
    FaultStats, RunOptions,
};
pub use graph::{Grouping, NodeId, WorkflowGraph, INPUT, OUTPUT};
pub use mapping::{run, run_with_options, DynamicConfig, Mapping, RunInput, RunResult};
pub use monitor::{Monitor, OutputSink};
pub use pe::{
    AggregatePE, ConsumerPE, Context, GenericPE, IterativePE, NamedPE, PortSpec, ProducerPE,
    StatefulPE, PE,
};

/// Everything a workflow author needs.
pub mod prelude {
    pub use crate::data::Data;
    pub use crate::fault::{
        inject_chaos, ChaosConfig, DeadLetterEntry, FaultInjector, FaultPolicy, FaultStats,
        RunOptions,
    };
    pub use crate::graph::{Grouping, NodeId, WorkflowGraph, INPUT, OUTPUT};
    pub use crate::mapping::{run, run_with_options, DynamicConfig, Mapping, RunInput, RunResult};
    pub use crate::pe::{
        AggregatePE, ConsumerPE, Context, GenericPE, IterativePE, NamedPE, PortSpec, ProducerPE,
        StatefulPE, PE,
    };
}
