//! Processing Elements (paper §II-A).
//!
//! A PE is the fundamental unit of computation: it consumes data on named
//! input ports, emits data on named output ports, and may keep local state
//! between invocations. The engine owns one *instance* per (PE, rank) — the
//! graph stores a **factory** so that parallel mappings can instantiate as
//! many copies as the process count requires, exactly as dispel4py
//! re-instantiates PEs per MPI rank.
//!
//! The dispel4py convenience hierarchy is reproduced with closure adapters:
//!
//! | dispel4py | here |
//! |---|---|
//! | `GenericPE` (n-in, n-out) | [`GenericPE`] |
//! | `IterativePE` (1-in, 1-out) | [`IterativePE`] |
//! | producer (0-in, 1-out) | [`ProducerPE`] |
//! | consumer (1-in, 0-out) | [`ConsumerPE`] |

use crate::data::Data;

/// Default single-input port name.
pub const INPUT_PORT: &str = "input";
/// Default single-output port name.
pub const OUTPUT_PORT: &str = "output";

/// Input/output port declaration of a PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSpec {
    pub inputs: Vec<String>,
    pub outputs: Vec<String>,
}

impl PortSpec {
    pub fn new<I, O>(inputs: I, outputs: O) -> Self
    where
        I: IntoIterator,
        I::Item: Into<String>,
        O: IntoIterator,
        O::Item: Into<String>,
    {
        PortSpec {
            inputs: inputs.into_iter().map(Into::into).collect(),
            outputs: outputs.into_iter().map(Into::into).collect(),
        }
    }

    /// 1-in / 1-out with the default port names.
    pub fn iterative() -> Self {
        PortSpec::new([INPUT_PORT], [OUTPUT_PORT])
    }

    pub fn producer() -> Self {
        PortSpec::new(Vec::<String>::new(), [OUTPUT_PORT])
    }

    pub fn consumer() -> Self {
        PortSpec::new([INPUT_PORT], Vec::<String>::new())
    }
}

/// Execution context handed to a PE on every invocation: emit data, write
/// to the captured output stream, know who/where you are.
pub struct Context<'a> {
    pub pe_name: &'a str,
    pub rank: usize,
    pub iteration: u64,
    emit: &'a mut dyn FnMut(&str, Data),
    log: &'a dyn Fn(String),
}

impl<'a> Context<'a> {
    pub fn new(
        pe_name: &'a str,
        rank: usize,
        iteration: u64,
        emit: &'a mut dyn FnMut(&str, Data),
        log: &'a dyn Fn(String),
    ) -> Self {
        Context {
            pe_name,
            rank,
            iteration,
            emit,
            log,
        }
    }

    /// Emit `data` on output port `port`.
    pub fn emit(&mut self, port: &str, data: Data) {
        (self.emit)(port, data);
    }

    /// Emit on the default output port.
    pub fn write(&mut self, data: Data) {
        (self.emit)(OUTPUT_PORT, data);
    }

    /// Append a line to the workflow's captured output stream (the
    /// equivalent of a Python PE printing to stdout, which Laminar's
    /// execution engine captures and streams to the client — §IV-E).
    pub fn log(&mut self, line: impl Into<String>) {
        (self.log)(line.into());
    }
}

/// Name accessor used by the graph's blanket `PEFactory` implementation:
/// any `Clone + NamedPE` PE value can be added to a graph directly.
pub trait NamedPE {
    fn pe_name(&self) -> String;
}

/// A Processing Element instance.
pub trait PE: Send {
    /// Port declaration (queried once at graph-build time).
    fn ports(&self) -> PortSpec;

    /// Handle one unit of work.
    ///
    /// * Producers are invoked with `input = None` once per iteration.
    /// * Everything else is invoked with `Some((port, data))` per datum.
    fn process(&mut self, input: Option<(String, Data)>, ctx: &mut Context<'_>);

    /// Called once before the first `process` on this instance.
    fn setup(&mut self, _ctx: &mut Context<'_>) {}

    /// Called once after the last `process` on this instance.
    fn teardown(&mut self, _ctx: &mut Context<'_>) {}
}

// ---------------------------------------------------------------------------
// Closure adapters
// ---------------------------------------------------------------------------

/// 1-in/1-out PE from a function of the input datum. Stateless form; use
/// [`StatefulPE`] to thread explicit state.
pub struct IterativePE<F> {
    name: String,
    f: F,
}

impl<F> IterativePE<F>
where
    F: FnMut(Data) -> Option<Data> + Send,
{
    pub fn new(name: impl Into<String>, f: F) -> Self {
        IterativePE {
            name: name.into(),
            f,
        }
    }
}

impl<F> PE for IterativePE<F>
where
    F: FnMut(Data) -> Option<Data> + Send,
{
    fn ports(&self) -> PortSpec {
        PortSpec::iterative()
    }

    fn process(&mut self, input: Option<(String, Data)>, ctx: &mut Context<'_>) {
        if let Some((_, data)) = input {
            if let Some(out) = (self.f)(data) {
                ctx.write(out);
            }
        }
    }
}

impl<F> IterativePE<F> {
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Stateful 1-in/1-out PE: the closure sees `&mut S` and the datum.
pub struct StatefulPE<S, F> {
    name: String,
    state: S,
    f: F,
}

impl<S, F> StatefulPE<S, F>
where
    S: Send,
    F: FnMut(&mut S, Data, &mut Context<'_>) + Send,
{
    pub fn new(name: impl Into<String>, state: S, f: F) -> Self {
        StatefulPE {
            name: name.into(),
            state,
            f,
        }
    }
}

impl<S, F> PE for StatefulPE<S, F>
where
    S: Send,
    F: FnMut(&mut S, Data, &mut Context<'_>) + Send,
{
    fn ports(&self) -> PortSpec {
        PortSpec::iterative()
    }

    fn process(&mut self, input: Option<(String, Data)>, ctx: &mut Context<'_>) {
        if let Some((_, data)) = input {
            (self.f)(&mut self.state, data, ctx);
        }
    }
}

/// 0-in/1-out PE invoked once per iteration with the iteration index.
/// Returning `None` ends the stream early.
pub struct ProducerPE<F> {
    name: String,
    f: F,
    exhausted: bool,
}

impl<F> ProducerPE<F>
where
    F: FnMut(u64) -> Option<Data> + Send,
{
    pub fn new(name: impl Into<String>, f: F) -> Self {
        ProducerPE {
            name: name.into(),
            f,
            exhausted: false,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<F> PE for ProducerPE<F>
where
    F: FnMut(u64) -> Option<Data> + Send,
{
    fn ports(&self) -> PortSpec {
        PortSpec::producer()
    }

    fn process(&mut self, _input: Option<(String, Data)>, ctx: &mut Context<'_>) {
        if self.exhausted {
            return;
        }
        match (self.f)(ctx.iteration) {
            Some(d) => ctx.write(d),
            None => self.exhausted = true,
        }
    }
}

/// 1-in/0-out PE, typically printing or collecting.
pub struct ConsumerPE<F> {
    name: String,
    f: F,
}

impl<F> ConsumerPE<F>
where
    F: FnMut(Data, &mut Context<'_>) + Send,
{
    pub fn new(name: impl Into<String>, f: F) -> Self {
        ConsumerPE {
            name: name.into(),
            f,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<F> PE for ConsumerPE<F>
where
    F: FnMut(Data, &mut Context<'_>) + Send,
{
    fn ports(&self) -> PortSpec {
        PortSpec::consumer()
    }

    fn process(&mut self, input: Option<(String, Data)>, ctx: &mut Context<'_>) {
        if let Some((_, data)) = input {
            (self.f)(data, ctx);
        }
    }
}

/// Windowed/terminal aggregation PE: folds every input into state and
/// emits the final aggregate exactly once, at teardown — the classic
/// streaming "aggregate then flush at end-of-stream" operator. Works on
/// every mapping because end-of-stream is delivered per instance (each
/// rank emits its partial aggregate; route with `Grouping::AllToOne` into
/// a downstream combiner for a global result).
pub struct AggregatePE<S, F, G> {
    name: String,
    state: S,
    fold: F,
    finish: G,
    saw_input: bool,
}

impl<S, F, G> AggregatePE<S, F, G>
where
    S: Send,
    F: FnMut(&mut S, Data) + Send,
    G: FnMut(&S) -> Option<Data> + Send,
{
    pub fn new(name: impl Into<String>, state: S, fold: F, finish: G) -> Self {
        AggregatePE {
            name: name.into(),
            state,
            fold,
            finish,
            saw_input: false,
        }
    }
}

impl<S, F, G> PE for AggregatePE<S, F, G>
where
    S: Send,
    F: FnMut(&mut S, Data) + Send,
    G: FnMut(&S) -> Option<Data> + Send,
{
    fn ports(&self) -> PortSpec {
        PortSpec::iterative()
    }

    fn process(&mut self, input: Option<(String, Data)>, _ctx: &mut Context<'_>) {
        if let Some((_, data)) = input {
            self.saw_input = true;
            (self.fold)(&mut self.state, data);
        }
    }

    fn teardown(&mut self, ctx: &mut Context<'_>) {
        // Idle ranks (no input routed to them) stay silent so AllToOne
        // combiners see one partial per *active* rank.
        if self.saw_input {
            if let Some(d) = (self.finish)(&self.state) {
                ctx.write(d);
            }
        }
    }
}

impl<S: Clone, F: Clone, G: Clone> Clone for AggregatePE<S, F, G> {
    fn clone(&self) -> Self {
        AggregatePE {
            name: self.name.clone(),
            state: self.state.clone(),
            fold: self.fold.clone(),
            finish: self.finish.clone(),
            saw_input: self.saw_input,
        }
    }
}

impl<S, F, G> NamedPE for AggregatePE<S, F, G> {
    fn pe_name(&self) -> String {
        self.name.clone()
    }
}

/// Fully general PE from explicit ports and a handler closure.
pub struct GenericPE<F> {
    name: String,
    ports: PortSpec,
    f: F,
}

impl<F> GenericPE<F>
where
    F: FnMut(Option<(String, Data)>, &mut Context<'_>) + Send,
{
    pub fn new(name: impl Into<String>, ports: PortSpec, f: F) -> Self {
        GenericPE {
            name: name.into(),
            ports,
            f,
        }
    }
}

impl<F> PE for GenericPE<F>
where
    F: FnMut(Option<(String, Data)>, &mut Context<'_>) + Send,
{
    fn ports(&self) -> PortSpec {
        self.ports.clone()
    }

    fn process(&mut self, input: Option<(String, Data)>, ctx: &mut Context<'_>) {
        (self.f)(input, ctx);
    }
}


// ---------------------------------------------------------------------------
// Clone + NamedPE implementations (enable direct `graph.add(pe_value)`)
// ---------------------------------------------------------------------------

impl<F: Clone> Clone for IterativePE<F> {
    fn clone(&self) -> Self {
        IterativePE {
            name: self.name.clone(),
            f: self.f.clone(),
        }
    }
}

impl<F> NamedPE for IterativePE<F> {
    fn pe_name(&self) -> String {
        self.name.clone()
    }
}

impl<S: Clone, F: Clone> Clone for StatefulPE<S, F> {
    fn clone(&self) -> Self {
        StatefulPE {
            name: self.name.clone(),
            state: self.state.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S, F> NamedPE for StatefulPE<S, F> {
    fn pe_name(&self) -> String {
        self.name.clone()
    }
}

impl<F: Clone> Clone for ProducerPE<F> {
    fn clone(&self) -> Self {
        ProducerPE {
            name: self.name.clone(),
            f: self.f.clone(),
            exhausted: self.exhausted,
        }
    }
}

impl<F> NamedPE for ProducerPE<F> {
    fn pe_name(&self) -> String {
        self.name.clone()
    }
}

impl<F: Clone> Clone for ConsumerPE<F> {
    fn clone(&self) -> Self {
        ConsumerPE {
            name: self.name.clone(),
            f: self.f.clone(),
        }
    }
}

impl<F> NamedPE for ConsumerPE<F> {
    fn pe_name(&self) -> String {
        self.name.clone()
    }
}

impl<F: Clone> Clone for GenericPE<F> {
    fn clone(&self) -> Self {
        GenericPE {
            name: self.name.clone(),
            ports: self.ports.clone(),
            f: self.f.clone(),
        }
    }
}

impl<F> NamedPE for GenericPE<F> {
    fn pe_name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn drive(pe: &mut dyn PE, inputs: Vec<Option<(String, Data)>>) -> (Vec<(String, Data)>, Vec<String>) {
        let emitted = RefCell::new(Vec::new());
        let logged = RefCell::new(Vec::new());
        for (i, input) in inputs.into_iter().enumerate() {
            let mut emit = |port: &str, d: Data| emitted.borrow_mut().push((port.to_string(), d));
            let log = |s: String| logged.borrow_mut().push(s);
            let mut ctx = Context::new("T", 0, i as u64, &mut emit, &log);
            pe.process(input, &mut ctx);
        }
        (emitted.into_inner(), logged.into_inner())
    }

    #[test]
    fn iterative_maps_and_filters() {
        let mut pe = IterativePE::new("Double", |d: Data| {
            let v = d.as_int()?;
            if v % 2 == 0 {
                Some(Data::from(v * 2))
            } else {
                None
            }
        });
        let (out, _) = drive(
            &mut pe,
            vec![
                Some((INPUT_PORT.into(), Data::from(2i64))),
                Some((INPUT_PORT.into(), Data::from(3i64))),
                Some((INPUT_PORT.into(), Data::from(4i64))),
            ],
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, Data::from(4i64));
        assert_eq!(out[1].1, Data::from(8i64));
        assert_eq!(out[0].0, OUTPUT_PORT);
    }

    #[test]
    fn producer_sees_iteration_and_can_stop() {
        let mut pe = ProducerPE::new("Gen", |i| if i < 3 { Some(Data::from(i)) } else { None });
        let (out, _) = drive(&mut pe, vec![None, None, None, None, None]);
        assert_eq!(out.len(), 3, "stops after returning None");
    }

    #[test]
    fn consumer_logs() {
        let mut pe = ConsumerPE::new("Print", |d: Data, ctx: &mut Context<'_>| {
            ctx.log(format!("the num {d} is prime"));
        });
        let (out, logs) = drive(&mut pe, vec![Some((INPUT_PORT.into(), Data::from(751i64)))]);
        assert!(out.is_empty());
        assert_eq!(logs, vec!["the num 751 is prime"]);
    }

    #[test]
    fn stateful_accumulates() {
        let mut pe = StatefulPE::new("Acc", 0i64, |acc: &mut i64, d: Data, ctx: &mut Context<'_>| {
            *acc += d.as_int().unwrap_or(0);
            ctx.write(Data::from(*acc));
        });
        let (out, _) = drive(
            &mut pe,
            vec![
                Some((INPUT_PORT.into(), Data::from(1i64))),
                Some((INPUT_PORT.into(), Data::from(2i64))),
                Some((INPUT_PORT.into(), Data::from(3i64))),
            ],
        );
        assert_eq!(
            out.iter().map(|(_, d)| d.as_int().unwrap()).collect::<Vec<_>>(),
            vec![1, 3, 6]
        );
    }

    #[test]
    fn generic_multi_port() {
        let ports = PortSpec::new(["left", "right"], ["sum"]);
        let mut pe = GenericPE::new("Gen", ports.clone(), |input, ctx: &mut Context<'_>| {
            if let Some((port, d)) = input {
                let sign = if port == "left" { 1 } else { -1 };
                ctx.emit("sum", Data::from(sign * d.as_int().unwrap_or(0)));
            }
        });
        assert_eq!(pe.ports(), ports);
        let (out, _) = drive(
            &mut pe,
            vec![
                Some(("left".into(), Data::from(5i64))),
                Some(("right".into(), Data::from(3i64))),
            ],
        );
        assert_eq!(out[0].1, Data::from(5i64));
        assert_eq!(out[1].1, Data::from(-3i64));
    }

    #[test]
    fn portspec_constructors() {
        assert_eq!(PortSpec::iterative().inputs, vec![INPUT_PORT]);
        assert_eq!(PortSpec::producer().inputs.len(), 0);
        assert_eq!(PortSpec::consumer().outputs.len(), 0);
    }
}
