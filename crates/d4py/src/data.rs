//! The value type flowing along workflow edges.
//!
//! dispel4py streams arbitrary Python objects; the Rust equivalent is a
//! compact JSON-like enum. Strings are `Arc<str>` so cloning a record to
//! fan it out to several consumers is cheap (the multiprocessing mapping
//! clones once per target rank).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A streamed value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Data {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    List(Vec<Data>),
    Map(BTreeMap<String, Data>),
}

impl Data {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Data::Int(i) => Some(*i),
            Data::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Data::Float(f) => Some(*f),
            Data::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Data::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Data]> {
        match self {
            Data::List(l) => Some(l),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&BTreeMap<String, Data>> {
        match self {
            Data::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Field lookup for map records (used by `Grouping::GroupBy`).
    pub fn get(&self, key: &str) -> Option<&Data> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Stable hash for grouping (FNV over the display form — cheap and
    /// deterministic across processes).
    pub fn group_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let s = self.to_string();
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Build a map record from pairs.
    pub fn record<I, K>(pairs: I) -> Data
    where
        I: IntoIterator<Item = (K, Data)>,
        K: Into<String>,
    {
        Data::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Data::Null => write!(f, "None"),
            Data::Bool(b) => write!(f, "{}", if *b { "True" } else { "False" }),
            Data::Int(i) => write!(f, "{i}"),
            Data::Float(x) => write!(f, "{x}"),
            Data::Str(s) => write!(f, "{s}"),
            Data::List(l) => {
                write!(f, "[")?;
                for (i, d) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, "]")
            }
            Data::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "'{k}': {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Data {
    fn from(v: i64) -> Self {
        Data::Int(v)
    }
}

impl From<i32> for Data {
    fn from(v: i32) -> Self {
        Data::Int(v as i64)
    }
}

impl From<u64> for Data {
    fn from(v: u64) -> Self {
        Data::Int(v as i64)
    }
}

impl From<f64> for Data {
    fn from(v: f64) -> Self {
        Data::Float(v)
    }
}

impl From<bool> for Data {
    fn from(v: bool) -> Self {
        Data::Bool(v)
    }
}

impl From<&str> for Data {
    fn from(v: &str) -> Self {
        Data::Str(Arc::from(v))
    }
}

impl From<String> for Data {
    fn from(v: String) -> Self {
        Data::Str(Arc::from(v.as_str()))
    }
}

impl<T: Into<Data>> From<Vec<T>> for Data {
    fn from(v: Vec<T>) -> Self {
        Data::List(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Data::from(3i64).as_int(), Some(3));
        assert_eq!(Data::from(2.5).as_float(), Some(2.5));
        assert_eq!(Data::from(7i64).as_float(), Some(7.0));
        assert_eq!(Data::from("hi").as_str(), Some("hi"));
        assert_eq!(Data::from(true).as_int(), Some(1));
        assert_eq!(Data::from(vec![1i64, 2]).as_list().unwrap().len(), 2);
        assert_eq!(Data::Null.as_int(), None);
    }

    #[test]
    fn record_and_get() {
        let r = Data::record([("temp", Data::from(21.5)), ("city", Data::from("lisbon"))]);
        assert_eq!(r.get("city").and_then(Data::as_str), Some("lisbon"));
        assert_eq!(r.get("missing"), None);
        assert_eq!(Data::from(1i64).get("x"), None);
    }

    #[test]
    fn display_is_pythonic() {
        assert_eq!(Data::Null.to_string(), "None");
        assert_eq!(Data::from(true).to_string(), "True");
        let r = Data::record([("input", Data::from(751i64))]);
        assert_eq!(r.to_string(), "{'input': 751}");
        assert_eq!(Data::from(vec![1i64, 2]).to_string(), "[1, 2]");
    }

    #[test]
    fn group_hash_stability_and_spread() {
        let a = Data::from("alpha");
        assert_eq!(a.group_hash(), Data::from("alpha").group_hash());
        assert_ne!(a.group_hash(), Data::from("beta").group_hash());
        // Int 1 and Str "1" share display → same hash; grouping semantics
        // treat them as the same key, which matches Python dict-key usage
        // in d4py workflows closely enough.
        assert_eq!(Data::from(1i64).group_hash(), Data::from("1").group_hash());
    }

    #[test]
    fn cheap_clone_shares_string() {
        let s = Data::from("shared-payload");
        let t = s.clone();
        if let (Data::Str(a), Data::Str(b)) = (&s, &t) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!();
        }
    }

    #[test]
    fn serde_roundtrip() {
        let r = Data::record([
            ("xs", Data::from(vec![1i64, 2, 3])),
            ("ok", Data::from(true)),
        ]);
        let json = serde_json::to_string(&r).unwrap();
        let back: Data = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
