//! Monitoring: captured output stream + per-rank iteration counts.
//!
//! Reproduces the observable behaviour of the paper's Fig. 5b run log:
//! workflow output lines ("the num {'input': 751} is prime") interleaved
//! with, in verbose mode, per-rank iteration summaries ("IsPrime1 (rank 1):
//! Processed 3 iterations.").

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Streaming tap invoked synchronously for every pushed line.
pub type LineTap = Arc<dyn Fn(&str) + Send + Sync>;

/// Thread-safe collector for the workflow's output stream. Cloning shares
/// the underlying buffer. An optional *tap* receives every line as it is
/// pushed — this is what the execution engine's HTTP/2-style streaming
/// hooks into (paper §IV-E).
#[derive(Clone, Default)]
pub struct OutputSink {
    lines: Arc<Mutex<Vec<String>>>,
    tap: Option<LineTap>,
}

impl OutputSink {
    pub fn new() -> Self {
        OutputSink::default()
    }

    /// Attach a streaming tap: called synchronously for every line.
    pub fn with_tap(tap: LineTap) -> Self {
        OutputSink {
            lines: Arc::new(Mutex::new(Vec::new())),
            tap: Some(tap),
        }
    }

    pub fn push(&self, line: String) {
        if let Some(tap) = &self.tap {
            tap(&line);
        }
        self.lines.lock().push(line);
    }

    /// Snapshot of all lines so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.lines.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lines.lock().is_empty()
    }
}

/// Per-(PE, rank) iteration counters.
#[derive(Clone, Default)]
pub struct Monitor {
    counts: Arc<Mutex<BTreeMap<(String, usize), u64>>>,
}

impl Monitor {
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Record `n` processed iterations for `(pe display name, rank)`.
    pub fn record(&self, pe: &str, rank: usize, n: u64) {
        *self.counts.lock().entry((pe.to_string(), rank)).or_insert(0) += n;
    }

    /// Snapshot of the counters.
    pub fn counts(&self) -> BTreeMap<(String, usize), u64> {
        self.counts.lock().clone()
    }

    /// Fig. 5b-style summary lines, sorted by (PE, rank).
    pub fn summary(&self) -> Vec<String> {
        self.counts
            .lock()
            .iter()
            .map(|((pe, rank), n)| format!("{pe} (rank {rank}): Processed {n} iterations."))
            .collect()
    }

    /// Total iterations across all ranks of `pe`.
    pub fn total_for(&self, pe: &str) -> u64 {
        self.counts
            .lock()
            .iter()
            .filter(|((p, _), _)| p == pe)
            .map(|(_, n)| *n)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sink_collects_in_order() {
        let sink = OutputSink::new();
        sink.push("a".into());
        sink.push("b".into());
        assert_eq!(sink.lines(), vec!["a", "b"]);
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
    }

    #[test]
    fn sink_clone_shares_buffer() {
        let sink = OutputSink::new();
        let clone = sink.clone();
        clone.push("x".into());
        assert_eq!(sink.lines(), vec!["x"]);
    }

    #[test]
    fn tap_fires_synchronously_per_line() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let sink = OutputSink::with_tap(Arc::new(move |_line| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        sink.push("one".into());
        sink.push("two".into());
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(sink.lines().len(), 2);
    }

    #[test]
    fn monitor_accumulates_and_summarises() {
        let m = Monitor::new();
        m.record("IsPrime1", 1, 3);
        m.record("IsPrime1", 2, 3);
        m.record("IsPrime1", 1, 1); // accumulates
        m.record("NumberProducer0", 0, 10);
        assert_eq!(m.total_for("IsPrime1"), 7);
        let summary = m.summary();
        assert!(summary.contains(&"IsPrime1 (rank 1): Processed 4 iterations.".to_string()));
        assert!(summary.contains(&"NumberProducer0 (rank 0): Processed 10 iterations.".to_string()));
    }

    #[test]
    fn monitor_thread_safety() {
        let m = Monitor::new();
        std::thread::scope(|s| {
            for rank in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.record("PE", rank, 1);
                    }
                });
            }
        });
        let total: u64 = m.counts().values().sum();
        assert_eq!(total, 8000);
    }
}
