//! Stock workflows used throughout the workspace — the paper's running
//! examples (isprime_wf of Fig. 5, word counting of Fig. 7, anomaly
//! detection of Fig. 8) plus small helpers for tests and benches.
//!
//! Everything is deterministic: "random" numbers come from a fixed-seed
//! xorshift keyed by the iteration index, so runs are reproducible across
//! mappings and machines.

use crate::data::Data;
use crate::graph::{Grouping, WorkflowGraph, INPUT, OUTPUT};
use crate::pe::{
    AggregatePE, ConsumerPE, Context, GenericPE, IterativePE, PortSpec, ProducerPE, StatefulPE,
};
use std::collections::BTreeMap;

/// Deterministic pseudo-random number in `1..=max` keyed by `i`.
pub fn pseudo_random(i: u64, max: u64) -> u64 {
    let mut x = i.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xDEADBEEF);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    (x % max) + 1
}

/// Producer emitting pseudo-random integers in `1..=max`
/// (the paper's `NumberProducer`).
pub fn number_producer(max: u64) -> impl crate::graph::PEFactory {
    ProducerPE::new("Numbers", move |i| Some(Data::from(pseudo_random(i, max) as i64)))
}

/// Identity 1-in/1-out PE.
pub fn identity_pe(name: &str) -> impl crate::graph::PEFactory {
    IterativePE::new(name, Some)
}

/// Consumer logging `got <datum>`.
pub fn print_consumer(name: &str) -> impl crate::graph::PEFactory {
    ConsumerPE::new(name, |d: Data, ctx: &mut Context<'_>| {
        ctx.log(format!("got {d}"));
    })
}

/// Producer → doubler → printer (the crate-level doc example).
pub fn doubler_graph() -> WorkflowGraph {
    let mut g = WorkflowGraph::new("doubler_wf");
    let src = g.add(ProducerPE::new("Numbers", |i| Some(Data::from(i as i64))));
    let dbl = g.add(IterativePE::new("Double", |d: Data| {
        Some(Data::from(d.as_int().unwrap_or(0) * 2))
    }));
    let sink = g.add(print_consumer("Print"));
    g.connect(src, OUTPUT, dbl, INPUT).expect("ports exist");
    g.connect(dbl, OUTPUT, sink, INPUT).expect("ports exist");
    g
}

/// Is `n` prime? (trial division — deliberately the naive algorithm of the
/// paper's Listing 1, which doubles as CPU-bound work for the benches).
pub fn is_prime(n: i64) -> bool {
    if n < 2 {
        return false;
    }
    let mut i = 2;
    while i < n {
        if n % i == 0 {
            return false;
        }
        i += 1;
    }
    true
}

/// The paper's `isprime_wf` (Fig. 5): NumberProducer → IsPrime →
/// PrintPrime. Output lines match Fig. 5b: `the num {'input': 751} is prime`.
pub fn isprime_graph() -> WorkflowGraph {
    let mut g = WorkflowGraph::new("isprime_wf");
    let producer = g.add(ProducerPE::new("NumberProducer", |i| {
        Some(Data::from(pseudo_random(i, 1000) as i64))
    }));
    let isprime = g.add(IterativePE::new("IsPrime", |d: Data| {
        let n = d.as_int()?;
        if is_prime(n) {
            Some(d)
        } else {
            None
        }
    }));
    let printer = g.add(ConsumerPE::new("PrintPrime", |d: Data, ctx: &mut Context<'_>| {
        let record = Data::record([("input", d)]);
        ctx.log(format!("the num {record} is prime"));
    }));
    g.connect(producer, OUTPUT, isprime, INPUT).expect("ports exist");
    g.connect(isprime, OUTPUT, printer, INPUT).expect("ports exist");
    g
}

const SENTENCES: &[&str] = &[
    "stream processing with laminar",
    "serverless stream processing",
    "laminar runs dispel4py workflows",
    "search the registry for stream workflows",
    "code search finds similar processing elements",
    "stream the output to the client",
];

/// Word-count workflow (Fig. 7's `words`-flavoured registry entries):
/// SentenceProducer → Splitter (one word per output) → WordCounter
/// (stateful, grouped by word) → printer logging `<word> <count>`.
pub fn word_count_graph() -> WorkflowGraph {
    let mut g = WorkflowGraph::new("wordcount_wf");
    let src = g.add(ProducerPE::new("Sentences", |i| {
        Some(Data::from(SENTENCES[(i as usize) % SENTENCES.len()]))
    }));
    let split = g.add(GenericPE::new(
        "Splitter",
        PortSpec::iterative(),
        |input: Option<(String, Data)>, ctx: &mut Context<'_>| {
            if let Some((_, d)) = input {
                if let Some(s) = d.as_str() {
                    for w in s.split_whitespace() {
                        ctx.write(Data::record([("word", Data::from(w))]));
                    }
                }
            }
        },
    ));
    let count = g.add(StatefulPE::new(
        "WordCounter",
        BTreeMap::<String, i64>::new(),
        |state: &mut BTreeMap<String, i64>, d: Data, ctx: &mut Context<'_>| {
            if let Some(w) = d.get("word").and_then(Data::as_str) {
                let c = state.entry(w.to_string()).or_insert(0);
                *c += 1;
                ctx.write(Data::from(format!("{w} {c}")));
            }
        },
    ));
    let sink = g.add(ConsumerPE::new("PrintCount", |d: Data, ctx: &mut Context<'_>| {
        ctx.log(d.to_string());
    }));
    g.connect(src, OUTPUT, split, INPUT).expect("ports exist");
    g.connect_grouped(split, OUTPUT, count, INPUT, Grouping::GroupBy("word".into()))
        .expect("ports exist");
    g.connect(count, OUTPUT, sink, INPUT).expect("ports exist");
    g
}

/// Anomaly-detection workflow (the Fig. 8 registry content): a sensor
/// producer emits temperature records; NormalizeData converts to Celsius;
/// AnomalyDetection flags out-of-band values; Alerting logs them.
pub fn anomaly_graph(threshold: f64) -> WorkflowGraph {
    let mut g = WorkflowGraph::new("anomaly_wf");
    let src = g.add(ProducerPE::new("SensorReadings", |i| {
        // Mostly benign readings with occasional spikes.
        let base = 290.0 + (pseudo_random(i, 100) as f64) / 10.0;
        let spike = if pseudo_random(i, 10) == 1 { 60.0 } else { 0.0 };
        Some(Data::record([
            ("sensor", Data::from(format!("s{}", i % 4))),
            ("kelvin", Data::from(base + spike)),
        ]))
    }));
    let norm = g.add(IterativePE::new("NormalizeData", |d: Data| {
        let k = d.get("kelvin")?.as_float()?;
        let sensor = d.get("sensor")?.clone();
        Some(Data::record([
            ("sensor", sensor),
            ("celsius", Data::from(k - 273.15)),
        ]))
    }));
    let detect = g.add(IterativePE::new("AnomalyDetection", move |d: Data| {
        let c = d.get("celsius")?.as_float()?;
        if c > threshold {
            Some(d)
        } else {
            None
        }
    }));
    let alert = g.add(ConsumerPE::new("Alerting", |d: Data, ctx: &mut Context<'_>| {
        ctx.log(format!("ALERT anomaly detected: {d}"));
    }));
    g.connect(src, OUTPUT, norm, INPUT).expect("ports exist");
    g.connect(norm, OUTPUT, detect, INPUT).expect("ports exist");
    g.connect(detect, OUTPUT, alert, INPUT).expect("ports exist");
    g
}

/// CPU-bound pipeline for the mapping benches (E10): the per-item cost is
/// `work` rounds of trial division, and the cost is *skewed* (items keyed
/// `i % 7 == 0` are 8× heavier) so dynamic allocation has an edge.
pub fn cpu_bound_graph(work: u64, skewed: bool) -> WorkflowGraph {
    let mut g = WorkflowGraph::new("cpu_wf");
    let src = g.add(ProducerPE::new("Feed", move |i| Some(Data::from(i as i64))));
    let crunch = g.add(IterativePE::new("Crunch", move |d: Data| {
        let i = d.as_int().unwrap_or(0) as u64;
        let rounds = if skewed && i.is_multiple_of(7) { work * 8 } else { work };
        let mut primes = 0i64;
        for n in 0..rounds {
            if is_prime((1000 + n) as i64) {
                primes += 1;
            }
        }
        Some(Data::from(primes))
    }));
    let sink = g.add(ConsumerPE::new("Collect", |d: Data, ctx: &mut Context<'_>| {
        ctx.log(format!("{d}"));
    }));
    g.connect(src, OUTPUT, crunch, INPUT).expect("ports exist");
    g.connect(crunch, OUTPUT, sink, INPUT).expect("ports exist");
    g
}

/// Terminal-aggregation workflow: producer(0..n) → per-rank partial sums
/// (flushed at end-of-stream) → AllToOne global combiner → printer.
/// The classic two-level streaming aggregation tree; exercises the
/// teardown-emission path on every mapping.
pub fn aggregate_sum_graph() -> WorkflowGraph {
    let mut g = WorkflowGraph::new("aggregate_wf");
    let src = g.add(ProducerPE::new("Feed", |i| Some(Data::from(i as i64))));
    let partial = g.add(AggregatePE::new(
        "PartialSum",
        0i64,
        |acc: &mut i64, d: Data| *acc += d.as_int().unwrap_or(0),
        |acc: &i64| Some(Data::from(*acc)),
    ));
    let combine = g.add(AggregatePE::new(
        "GlobalSum",
        0i64,
        |acc: &mut i64, d: Data| *acc += d.as_int().unwrap_or(0),
        |acc: &i64| Some(Data::from(*acc)),
    ));
    let sink = g.add(ConsumerPE::new("PrintSum", |d: Data, ctx: &mut Context<'_>| {
        ctx.log(format!("sum {d}"));
    }));
    g.connect(src, OUTPUT, partial, INPUT).expect("ports exist");
    g.connect_grouped(partial, OUTPUT, combine, INPUT, Grouping::AllToOne)
        .expect("ports exist");
    g.connect(combine, OUTPUT, sink, INPUT).expect("ports exist");
    g
}

/// Latency-bound pipeline for the mapping benches on few-core machines:
/// each item waits `delay_us` microseconds (an I/O-ish PE — network call,
/// disk read); parallel mappings overlap the waits. `skewed` makes items
/// with `i % 7 == 0` eight times slower.
pub fn latency_bound_graph(delay_us: u64, skewed: bool) -> WorkflowGraph {
    let mut g = WorkflowGraph::new("latency_wf");
    let src = g.add(ProducerPE::new("Feed", move |i| Some(Data::from(i as i64))));
    let wait = g.add(IterativePE::new("Wait", move |d: Data| {
        let i = d.as_int().unwrap_or(0) as u64;
        let us = if skewed && i.is_multiple_of(7) { delay_us * 8 } else { delay_us };
        std::thread::sleep(std::time::Duration::from_micros(us));
        Some(d)
    }));
    let sink = g.add(ConsumerPE::new("Collect", |d: Data, ctx: &mut Context<'_>| {
        ctx.log(format!("{d}"));
    }));
    g.connect(src, OUTPUT, wait, INPUT).expect("ports exist");
    g.connect(wait, OUTPUT, sink, INPUT).expect("ports exist");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{run, Mapping, RunInput};

    #[test]
    fn pseudo_random_is_deterministic_and_in_range() {
        for i in 0..1000 {
            let v = pseudo_random(i, 1000);
            assert!((1..=1000).contains(&v));
            assert_eq!(v, pseudo_random(i, 1000));
        }
        // Spread: at least 500 distinct values over 1000 draws.
        let distinct: std::collections::HashSet<u64> =
            (0..1000).map(|i| pseudo_random(i, 1000)).collect();
        assert!(distinct.len() > 500);
    }

    #[test]
    fn is_prime_basics() {
        assert!(!is_prime(0));
        assert!(!is_prime(1));
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(4));
        assert!(is_prime(751)); // Fig. 5b's example prime
        assert!(!is_prime(1000));
    }

    #[test]
    fn isprime_graph_output_format_matches_fig5b() {
        let r = run(&isprime_graph(), RunInput::Iterations(50), &Mapping::Simple).unwrap();
        assert!(!r.lines().is_empty());
        let line = &r.lines()[0];
        assert!(line.starts_with("the num {'input': "), "{line}");
        assert!(line.ends_with("} is prime"), "{line}");
    }

    #[test]
    fn anomaly_graph_only_flags_above_threshold() {
        let r = run(&anomaly_graph(50.0), RunInput::Iterations(100), &Mapping::Simple).unwrap();
        assert!(!r.lines().is_empty(), "spikes must occur in 100 draws");
        for line in r.lines() {
            assert!(line.starts_with("ALERT"), "{line}");
        }
        // Higher threshold → fewer (or equal) alerts.
        let strict = run(&anomaly_graph(80.0), RunInput::Iterations(100), &Mapping::Simple).unwrap();
        assert!(strict.lines().len() <= r.lines().len());
    }

    #[test]
    fn word_count_accumulates_per_word() {
        let r = run(&word_count_graph(), RunInput::Iterations(6), &Mapping::Simple).unwrap();
        let stream_counts: Vec<&String> = r
            .lines()
            .iter()
            .filter(|l| l.starts_with("stream "))
            .collect();
        assert!(stream_counts.len() >= 3, "{:?}", r.lines());
        // Counts must be monotonically increasing for one word.
        let values: Vec<i64> = stream_counts
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        for w in values.windows(2) {
            assert!(w[1] > w[0], "{values:?}");
        }
    }

    #[test]
    fn aggregate_sum_exact_on_static_mappings() {
        // 0+1+…+49 = 1225. Sequential and multi mappings must produce the
        // exact global sum as a single line.
        for mapping in [Mapping::Simple, Mapping::Multi { processes: 8 }] {
            let r = run(&aggregate_sum_graph(), RunInput::Iterations(50), &mapping).unwrap();
            assert_eq!(r.lines(), &["sum 1225"], "{:?}", r.counts);
        }
    }

    #[test]
    fn aggregate_sum_dynamic_partials_conserve_total() {
        // The dynamic mapping keeps per-worker state (the real Redis
        // mapping's restriction): each worker flushes its own partial at
        // teardown, so the *sum of the printed partials* is conserved.
        let r = run(
            &aggregate_sum_graph(),
            RunInput::Iterations(50),
            &Mapping::Dynamic(crate::mapping::DynamicConfig {
                initial_workers: 3,
                max_workers: 3,
                autoscale: false,
                scale_threshold: 4,
            }),
        )
        .unwrap();
        let total: i64 = r
            .lines()
            .iter()
            .map(|l| l.strip_prefix("sum ").unwrap().parse::<i64>().unwrap())
            .sum();
        assert_eq!(total, 1225, "{:?}", r.lines());
    }

    #[test]
    fn cpu_bound_graph_runs_on_all_mappings() {
        for m in [
            Mapping::Simple,
            Mapping::Multi { processes: 4 },
            Mapping::Dynamic(crate::mapping::DynamicConfig::default()),
        ] {
            let r = run(&cpu_bound_graph(10, true), RunInput::Iterations(10), &m).unwrap();
            assert_eq!(r.lines().len(), 10);
        }
    }
}
