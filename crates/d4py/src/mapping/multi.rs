//! The *multiprocessing* mapping: static workload distribution
//! (paper §II-A, Fig. 5b).
//!
//! The process count is partitioned statically over the PEs —
//! `{'NumberProducer': range(0, 1), 'IsPrime1': range(1, 5), 'PrintPrime2':
//! range(5, 9)}` for 9 processes — and each rank becomes an OS thread owning
//! its own PE instance and a bounded crossbeam channel. Data is routed to
//! target ranks according to the edge's [`Grouping`](crate::graph::Grouping); termination uses
//! end-of-stream tokens counted per upstream rank, the standard dataflow
//! discipline.
//!
//! Fault model: every PE invocation runs under the run's [`Supervisor`]
//! (`catch_unwind` isolation), so a panicking PE fails its rank with a
//! typed error instead of unwinding the thread, is retried in place, or
//! dead-letters the datum — per the run's
//! [`FaultPolicy`](crate::fault::FaultPolicy). A send to a rank that died
//! abnormally is recorded as `GraphError::PeerDisconnected` in a shared
//! first-failure slot rather than aborting the process; the primary error
//! (the panic that killed the peer) still wins the error surface because
//! it is recorded strictly earlier.

use crate::data::Data;
use crate::error::GraphError;
use crate::fault::{Supervised, Supervisor};
use crate::graph::{NodeId, WorkflowGraph};
use crate::mapping::RunInput;
use crate::monitor::{Monitor, OutputSink};
use crate::pe::Context;
use crossbeam_channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;

/// Channel capacity per rank — bounded for backpressure (HPC guide idiom).
const CHANNEL_CAP: usize = 1024;

enum Msg {
    Item { port: String, data: Data },
    Eos,
}

/// First-failure slot shared by all ranks; the earliest recorded error is
/// the one the run reports (panics beat the secondary peer-disconnect
/// errors they cause, because ranks record before exiting).
struct FailSlot(Mutex<Option<GraphError>>);

impl FailSlot {
    fn record(&self, err: GraphError) {
        let mut slot = self.0.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    fn take(&self) -> Option<GraphError> {
        self.0.lock().take()
    }
}

pub(crate) fn execute(
    graph: &WorkflowGraph,
    input: &RunInput,
    processes: usize,
    sink: &OutputSink,
    monitor: &Monitor,
    supervisor: &Supervisor,
) -> Result<Vec<Range<usize>>, GraphError> {
    let partition = graph.partition(processes)?;

    // rank → owning node.
    let mut rank_node: Vec<usize> = vec![0; processes];
    for (node, range) in partition.iter().enumerate() {
        for r in range.clone() {
            rank_node[r] = node;
        }
    }

    // Channels, one per rank; popped front-to-back as ranks spawn.
    let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(processes);
    let mut receivers: VecDeque<Receiver<Msg>> = VecDeque::with_capacity(processes);
    for _ in 0..processes {
        let (tx, rx) = bounded::<Msg>(CHANNEL_CAP);
        senders.push(tx);
        receivers.push_back(rx);
    }

    // Expected EOS tokens per rank = Σ over in-edges of |source ranks|.
    let expected_eos: Vec<usize> = (0..processes)
        .map(|r| {
            let node = rank_node[r];
            graph
                .in_edges(NodeId(node))
                .iter()
                .map(|e| partition[e.from.0].len())
                .sum()
        })
        .collect();

    let fail_slot = FailSlot(Mutex::new(None));

    let result: Result<Vec<()>, GraphError> = std::thread::scope(|scope| {
        let fail_slot = &fail_slot;
        let mut handles = Vec::with_capacity(processes);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let node_idx = rank_node[rank];
            let node = graph.node(NodeId(node_idx));
            let display = node.display_name(node_idx);
            let factory = node.factory.clone();
            let senders = senders.clone();
            let partition = partition.clone();
            let sink = sink.clone();
            let monitor = monitor.clone();
            let expected = expected_eos[rank];
            let out_edges: Vec<_> = graph.out_edges(NodeId(node_idx)).into_iter().cloned().collect();
            let is_root = graph.in_edges(NodeId(node_idx)).is_empty();
            let input = input.clone();
            let first_input_port = node.ports.inputs.first().cloned();

            handles.push(scope.spawn(move || -> Result<(), GraphError> {
                let mut pe = factory.create();
                let mut iterations = 0u64;
                // Per-edge round-robin counters.
                let mut counters = vec![rank; out_edges.len()]; // offset by rank to spread load

                // Emission routing shared by all phases.
                let route = |edge_idx: usize,
                             port: &str,
                             data: Data,
                             counters: &mut Vec<usize>|
                 -> Vec<(usize, Msg)> {
                    let edge = &out_edges[edge_idx];
                    if edge.from_port != port {
                        return Vec::new();
                    }
                    let targets = partition[edge.to.0].clone();
                    let offsets =
                        WorkflowGraph::route(edge, &data, targets.len(), &mut counters[edge_idx]);
                    offsets
                        .into_iter()
                        .map(|o| {
                            (
                                targets.start + o,
                                Msg::Item {
                                    port: edge.to_port.clone(),
                                    data: data.clone(),
                                },
                            )
                        })
                        .collect()
                };

                let send_all = |emitted: Vec<(String, Data)>, counters: &mut Vec<usize>| {
                    for (port, data) in emitted {
                        for edge_idx in 0..out_edges.len() {
                            for (target, msg) in route(edge_idx, &port, data.clone(), counters) {
                                if senders[target].send(msg).is_err() {
                                    // Receiver gone = downstream rank died
                                    // abnormally. Record typed (the primary
                                    // failure was recorded first by the
                                    // dying rank); keep this rank draining
                                    // so upstream ranks can terminate.
                                    fail_slot.record(GraphError::PeerDisconnected {
                                        from: display.clone(),
                                        to: format!("rank {target}"),
                                    });
                                }
                            }
                        }
                    }
                };

                // Setup.
                let mut emitted: Vec<(String, Data)> = Vec::new();
                let outcome = supervisor.invoke(&display, None, None, &mut || {
                    emitted.clear();
                    let mut emit = |p: &str, d: Data| emitted.push((p.to_string(), d));
                    let log = |line: String| sink.push(line);
                    let mut ctx = Context::new(&display, rank, 0, &mut emit, &log);
                    pe.setup(&mut ctx);
                }).map_err(|e| {
                    fail_slot.record(e.clone());
                    e
                })?;
                if matches!(outcome, Supervised::Done) {
                    send_all(std::mem::take(&mut emitted), &mut counters);
                }

                if is_root {
                    // Root rank drives the input. (Each root PE has exactly
                    // one rank by construction of `partition`.)
                    let feed: Vec<Option<Data>> = match &input {
                        RunInput::Iterations(n) => (0..*n).map(|_| None).collect(),
                        RunInput::Data(items) => items.iter().map(|d| Some(d.clone())).collect(),
                    };
                    for (i, datum) in feed.into_iter().enumerate() {
                        let call = match (&datum, &first_input_port) {
                            (Some(d), Some(port)) => Some((port.clone(), d.clone())),
                            _ => None,
                        };
                        let mut emitted: Vec<(String, Data)> = Vec::new();
                        let outcome = supervisor.invoke(
                            &display,
                            call.as_ref().map(|(p, _)| p.as_str()),
                            call.as_ref().map(|(_, d)| d),
                            &mut || {
                                emitted.clear();
                                let mut emit =
                                    |p: &str, d: Data| emitted.push((p.to_string(), d));
                                let log = |line: String| sink.push(line);
                                let mut ctx =
                                    Context::new(&display, rank, i as u64, &mut emit, &log);
                                pe.process(call.clone(), &mut ctx);
                            },
                        ).map_err(|e| {
                            fail_slot.record(e.clone());
                            e
                        })?;
                        if matches!(outcome, Supervised::DeadLettered) {
                            continue;
                        }
                        iterations += 1;
                        send_all(emitted, &mut counters);
                    }
                } else {
                    // Worker rank: consume until all upstream EOS received.
                    let mut eos = 0usize;
                    while eos < expected {
                        match rx.recv() {
                            Ok(Msg::Item { port, data }) => {
                                let mut emitted: Vec<(String, Data)> = Vec::new();
                                let outcome = supervisor.invoke(
                                    &display,
                                    Some(&port),
                                    Some(&data),
                                    &mut || {
                                        emitted.clear();
                                        let mut emit =
                                            |p: &str, d: Data| emitted.push((p.to_string(), d));
                                        let log = |line: String| sink.push(line);
                                        let mut ctx = Context::new(
                                            &display, rank, iterations, &mut emit, &log,
                                        );
                                        pe.process(Some((port.clone(), data.clone())), &mut ctx);
                                    },
                                ).map_err(|e| {
                                    fail_slot.record(e.clone());
                                    e
                                })?;
                                if matches!(outcome, Supervised::DeadLettered) {
                                    continue;
                                }
                                iterations += 1;
                                send_all(emitted, &mut counters);
                            }
                            Ok(Msg::Eos) => eos += 1,
                            Err(_) => break, // all senders gone — treat as EOS
                        }
                    }
                }

                // Teardown, then propagate EOS to every downstream rank.
                let mut emitted: Vec<(String, Data)> = Vec::new();
                let outcome = supervisor.invoke(&display, None, None, &mut || {
                    emitted.clear();
                    let mut emit = |p: &str, d: Data| emitted.push((p.to_string(), d));
                    let log = |line: String| sink.push(line);
                    let mut ctx = Context::new(&display, rank, iterations, &mut emit, &log);
                    pe.teardown(&mut ctx);
                }).map_err(|e| {
                    fail_slot.record(e.clone());
                    e
                })?;
                if matches!(outcome, Supervised::Done) {
                    send_all(emitted, &mut counters);
                }
                for edge in &out_edges {
                    for target in partition[edge.to.0].clone() {
                        let _ = senders[target].send(Msg::Eos);
                    }
                }
                drop(senders);
                monitor.record(&display, rank, iterations);
                Ok(())
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(p) => Err(GraphError::WorkerPanicked(super::panic_message(p))),
            })
            .collect()
    });
    match result {
        Ok(_) => Ok(partition),
        Err(e) => {
            // Prefer the first-recorded failure: a panic that killed a rank
            // beats the peer-disconnect errors it caused downstream.
            Err(match fail_slot.take() {
                Some(first) => first,
                None => e,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::error::GraphError;
    use crate::mapping::{run, run_with_options, Mapping, RunInput};
    use crate::monitor::OutputSink;
    use crate::prelude::*;
    use crate::workflows;
    use std::collections::BTreeMap;

    fn sorted(mut v: Vec<String>) -> Vec<String> {
        v.sort();
        v
    }

    #[test]
    fn matches_simple_mapping_output_multiset() {
        let g1 = workflows::doubler_graph();
        let seq = run(&g1, RunInput::Iterations(20), &Mapping::Simple).unwrap();
        let g2 = workflows::doubler_graph();
        let par = run(&g2, RunInput::Iterations(20), &Mapping::Multi { processes: 6 }).unwrap();
        assert_eq!(sorted(seq.lines().to_vec()), sorted(par.lines().to_vec()));
    }

    #[test]
    fn partition_reported_fig5b_style() {
        let g = workflows::isprime_graph();
        let r = run(&g, RunInput::Iterations(10), &Mapping::Multi { processes: 9 }).unwrap();
        let p = r.partition.unwrap();
        assert_eq!(p[0], 0..1);
        assert_eq!(p[1], 1..5);
        assert_eq!(p[2], 5..9);
    }

    #[test]
    fn per_rank_counts_sum_to_total_work() {
        let g = workflows::doubler_graph();
        let r = run(&g, RunInput::Iterations(50), &Mapping::Multi { processes: 7 }).unwrap();
        let by_pe: BTreeMap<String, u64> =
            r.counts
                .iter()
                .fold(BTreeMap::new(), |mut acc, ((pe, _), n)| {
                    *acc.entry(pe.clone()).or_insert(0) += n;
                    acc
                });
        assert_eq!(by_pe.get("Numbers0"), Some(&50));
        assert_eq!(by_pe.get("Double1"), Some(&50));
        assert_eq!(by_pe.get("Print2"), Some(&50));
        // Work is actually spread: with 50 items and 2+ ranks on Double,
        // at least two ranks processed something.
        let double_ranks = r
            .counts
            .iter()
            .filter(|((pe, _), n)| pe == "Double1" && **n > 0)
            .count();
        assert!(double_ranks >= 2, "{:?}", r.counts);
    }

    #[test]
    fn minimum_process_count_enforced() {
        let g = workflows::isprime_graph();
        let err = run(&g, RunInput::Iterations(1), &Mapping::Multi { processes: 2 }).unwrap_err();
        assert!(matches!(err, GraphError::InvalidProcessCount { .. }));
    }

    #[test]
    fn group_by_keeps_keys_on_one_rank() {
        // Stateful counting per word only works when equal words land on
        // the same rank — exactly what GroupBy guarantees.
        let g = workflows::word_count_graph();
        let seq = run(&g, RunInput::Iterations(6), &Mapping::Simple).unwrap();
        let g2 = workflows::word_count_graph();
        let par = run(&g2, RunInput::Iterations(6), &Mapping::Multi { processes: 8 }).unwrap();
        // Final per-word maxima must agree between mappings.
        let final_counts = |lines: &[String]| -> BTreeMap<String, i64> {
            let mut m = BTreeMap::new();
            for l in lines {
                let mut parts = l.rsplitn(2, ' ');
                let n: i64 = parts.next().unwrap().parse().unwrap();
                let w = parts.next().unwrap().to_string();
                let e = m.entry(w).or_insert(0);
                if n > *e {
                    *e = n;
                }
            }
            m
        };
        assert_eq!(final_counts(seq.lines()), final_counts(par.lines()));
    }

    #[test]
    fn one_to_all_broadcasts() {
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(100));
        let sink = g.add(workflows::print_consumer("S"));
        g.connect_grouped(src, OUTPUT, sink, INPUT, Grouping::OneToAll)
            .unwrap();
        // 3 sink ranks → every datum printed 3 times.
        let r = run(&g, RunInput::Iterations(4), &Mapping::Multi { processes: 4 }).unwrap();
        assert_eq!(r.lines().len(), 12, "{:?}", r.lines());
    }

    #[test]
    fn all_to_one_serialises() {
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(100));
        let sink = g.add(workflows::print_consumer("S"));
        g.connect_grouped(src, OUTPUT, sink, INPUT, Grouping::AllToOne)
            .unwrap();
        let r = run(&g, RunInput::Iterations(5), &Mapping::Multi { processes: 5 }).unwrap();
        // All data on the sink's first rank.
        let first_rank_count = r
            .counts
            .iter()
            .filter(|((pe, _), n)| pe == "S1" && **n > 0)
            .count();
        assert_eq!(first_rank_count, 1, "{:?}", r.counts);
        assert_eq!(r.lines().len(), 5);
    }

    #[test]
    fn isprime_parallel_matches_sequential() {
        let seq = run(&workflows::isprime_graph(), RunInput::Iterations(30), &Mapping::Simple).unwrap();
        let par = run(
            &workflows::isprime_graph(),
            RunInput::Iterations(30),
            &Mapping::Multi { processes: 9 },
        )
        .unwrap();
        assert_eq!(sorted(seq.lines().to_vec()), sorted(par.lines().to_vec()));
    }

    #[test]
    fn worker_panic_is_reported_not_hung() {
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(100));
        let boom = g.add(IterativePE::new("Boom", |d: Data| {
            if d.as_int().unwrap_or(0) >= 0 {
                panic!("intentional test panic");
            }
            Some(d)
        }));
        g.connect(src, OUTPUT, boom, INPUT).unwrap();
        let err = run(&g, RunInput::Iterations(3), &Mapping::Multi { processes: 2 }).unwrap_err();
        match err {
            GraphError::WorkerPanicked(msg) => assert!(msg.contains("intentional")),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn data_input_supported() {
        let mut g = WorkflowGraph::new("w");
        let a = g.add(IterativePE::new("Inc", |d: Data| {
            Some(Data::from(d.as_int().unwrap_or(0) + 1))
        }));
        let b = g.add(workflows::print_consumer("Out"));
        g.connect(a, OUTPUT, b, INPUT).unwrap();
        let r = run(
            &g,
            RunInput::Data(vec![Data::from(1i64), Data::from(2i64), Data::from(3i64)]),
            &Mapping::Multi { processes: 3 },
        )
        .unwrap();
        assert_eq!(sorted(r.lines().to_vec()), vec!["got 2", "got 3", "got 4"]);
    }

    #[test]
    fn dead_letter_policy_survives_panicking_rank() {
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(100));
        let picky = g.add(IterativePE::new("Picky", |d: Data| {
            let v = d.as_int().unwrap_or(0);
            if v % 4 == 0 {
                panic!("refuses multiples of four: {v}");
            }
            Some(d)
        }));
        let sink = g.add(workflows::print_consumer("Out"));
        g.connect(src, OUTPUT, picky, INPUT).unwrap();
        g.connect(picky, OUTPUT, sink, INPUT).unwrap();
        let r = run_with_options(
            &g,
            RunInput::Iterations(8),
            &Mapping::Multi { processes: 4 },
            OutputSink::new(),
            &RunOptions {
                fault_policy: FaultPolicy::DeadLetter { max_attempts: 1 },
                task_timeout: None,
            },
        )
        .unwrap();
        // 0 and 4 dead-lettered; 1,2,3,5,6,7 delivered.
        assert_eq!(r.lines().len(), 6, "{:?}", r.lines());
        assert_eq!(r.dead_letters.len(), 2);
        assert!(r.dead_letters.iter().all(|e| e.pe == "Picky1"));
    }

    #[test]
    fn retry_policy_exhaustion_fails_typed() {
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(100));
        let boom = g.add(IterativePE::new("Boom", |_d: Data| -> Option<Data> {
            panic!("permanent")
        }));
        g.connect(src, OUTPUT, boom, INPUT).unwrap();
        let err = run_with_options(
            &g,
            RunInput::Iterations(2),
            &Mapping::Multi { processes: 2 },
            OutputSink::new(),
            &RunOptions {
                fault_policy: FaultPolicy::Retry {
                    max_attempts: 2,
                    backoff: std::time::Duration::ZERO,
                },
                task_timeout: None,
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, GraphError::PeFailed { ref pe, attempts: 2, .. } if pe == "Boom1"),
            "{err:?}"
        );
    }
}
