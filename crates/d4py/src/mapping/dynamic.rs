//! The *dynamic* mapping: adaptive workload allocation through a shared
//! work queue (dispel4py's *Redis* mapping; Liang et al. 2022).
//!
//! Instead of pinning ranks to PEs statically, every datum becomes a task
//! in a broker queue and any worker may execute any PE. Workers keep one
//! instance per PE (lazily created), so stateless and per-worker-stateful
//! PEs work naturally; key-partitioned state requires the static mapping's
//! `GroupBy`, the same restriction the real Redis mapping has.
//!
//! Auto-provisioning (paper §III "auto-provisioning", §IV "dynamic process
//! allocation") is simulated with an autoscaler: when queue depth per
//! active worker exceeds a threshold, another pre-spawned worker is
//! activated, up to `max_workers`.

use crate::data::Data;
use crate::error::GraphError;
use crate::graph::{NodeId, WorkflowGraph};
use crate::mapping::{DynamicConfig, RunInput};
use crate::monitor::{Monitor, OutputSink};
use crate::pe::{Context, PE};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// One unit of work in the broker queue.
enum Task {
    /// Drive a producer once with the given iteration index.
    Produce { node: usize, iteration: u64 },
    /// Deliver a datum to a PE's input port.
    Item { node: usize, port: String, data: Data },
}

/// The simulated Redis broker: FIFO queue + in-flight accounting.
struct Broker {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
    in_flight: AtomicUsize,
    done: AtomicBool,
    failure: Mutex<Option<String>>,
}

impl Broker {
    fn new() -> Self {
        Broker {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            failure: Mutex::new(None),
        }
    }

    fn push(&self, task: Task) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().push_back(task);
        self.available.notify_one();
    }

    /// Pop with a short wait; `None` means "check termination".
    fn pop(&self) -> Option<Task> {
        let mut q = self.queue.lock();
        if let Some(t) = q.pop_front() {
            return Some(t);
        }
        self.available.wait_for(&mut q, Duration::from_millis(2));
        q.pop_front()
    }

    /// Called by a worker after fully processing one task (children already
    /// pushed). When the last task completes, wakes everyone up.
    fn finish_one(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.done.store(true, Ordering::SeqCst);
            self.available.notify_all();
        }
    }

    fn depth(&self) -> usize {
        self.queue.lock().len()
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Abort the run: record the first failure and release all waiters.
    fn fail(&self, msg: String) {
        let mut f = self.failure.lock();
        if f.is_none() {
            *f = Some(msg);
        }
        drop(f);
        self.done.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }
}

pub(crate) fn execute(
    graph: &WorkflowGraph,
    input: &RunInput,
    cfg: &DynamicConfig,
    sink: &OutputSink,
    monitor: &Monitor,
) -> Result<(), GraphError> {
    if cfg.initial_workers == 0 || cfg.max_workers < cfg.initial_workers {
        return Err(GraphError::InvalidProcessCount {
            requested: cfg.initial_workers,
            minimum: 1,
        });
    }
    let broker = Broker::new();
    let active_workers = AtomicUsize::new(cfg.initial_workers);

    // Seed the queue from the run input.
    let roots = graph.roots();
    match input {
        RunInput::Iterations(n) => {
            for &r in &roots {
                for i in 0..*n {
                    broker.push(Task::Produce {
                        node: r.0,
                        iteration: i,
                    });
                }
            }
        }
        RunInput::Data(items) => {
            for &r in &roots {
                let node = graph.node(r);
                let has_input = !node.ports.inputs.is_empty();
                for (i, d) in items.iter().enumerate() {
                    if has_input {
                        broker.push(Task::Item {
                            node: r.0,
                            port: node.ports.inputs[0].clone(),
                            data: d.clone(),
                        });
                    } else {
                        broker.push(Task::Produce {
                            node: r.0,
                            iteration: i as u64,
                        });
                    }
                }
            }
        }
    }
    if broker.in_flight.load(Ordering::SeqCst) == 0 {
        return Ok(()); // nothing to do
    }

    let result: Result<Vec<()>, GraphError> = std::thread::scope(|scope| {
        let broker = &broker;
        let active = &active_workers;
        let mut handles = Vec::new();

        // Workers 0..max are pre-spawned; worker w only pulls while
        // `w < active` (the autoscaler raises `active`).
        for w in 0..cfg.max_workers {
            let sink = sink.clone();
            let monitor = monitor.clone();
            handles.push(scope.spawn(move || -> Result<(), GraphError> {
                let mut instances: HashMap<usize, Box<dyn PE>> = HashMap::new();
                let mut counts: HashMap<usize, u64> = HashMap::new();
                loop {
                    if broker.is_done() {
                        break;
                    }
                    if w >= active.load(Ordering::SeqCst) {
                        // Inactive (not yet provisioned): idle-wait.
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    let Some(task) = broker.pop() else { continue };
                    let (node_idx, call, iteration) = match task {
                        Task::Produce { node, iteration } => (node, None, iteration),
                        Task::Item { node, port, data } => {
                            let it = *counts.get(&node).unwrap_or(&0);
                            (node, Some((port, data)), it)
                        }
                    };
                    let node = graph.node(NodeId(node_idx));
                    let display = node.display_name(node_idx);
                    let pe = instances
                        .entry(node_idx)
                        .or_insert_with(|| node.factory.create());
                    let mut emitted: Vec<(String, Data)> = Vec::new();
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut emit = |p: &str, d: Data| emitted.push((p.to_string(), d));
                        let log = |line: String| sink.push(line);
                        let mut ctx = Context::new(&display, w, iteration, &mut emit, &log);
                        pe.process(call, &mut ctx);
                    }));
                    if let Err(p) = outcome {
                        broker.fail(crate::mapping::panic_message(p));
                        break;
                    }
                    *counts.entry(node_idx).or_insert(0) += 1;
                    // Route children before finishing this task, so
                    // in-flight never drops to zero while work remains.
                    // Grouping degenerates to "any worker" here: the broker
                    // has no rank concept (the real Redis mapping shares the
                    // restriction for key-partitioned state).
                    for (port, data) in emitted {
                        for edge in graph.out_edges(NodeId(node_idx)) {
                            if edge.from_port == port {
                                broker.push(Task::Item {
                                    node: edge.to.0,
                                    port: edge.to_port.clone(),
                                    data: data.clone(),
                                });
                            }
                        }
                    }
                    broker.finish_one();
                }
                // Teardown phase: flush terminal aggregates. Teardown
                // emissions are drained *locally* on this worker (the
                // broker has already terminated), which mirrors the real
                // Redis mapping's per-consumer state semantics.
                if broker.failure.lock().is_none() {
                    let mut torn: std::collections::HashSet<usize> = std::collections::HashSet::new();
                    let mut local: VecDeque<(usize, String, Data)> = VecDeque::new();
                    loop {
                        let pending: Vec<usize> = instances
                            .keys()
                            .copied()
                            .filter(|n| !torn.contains(n))
                            .collect();
                        if pending.is_empty() && local.is_empty() {
                            break;
                        }
                        for node_idx in pending {
                            torn.insert(node_idx);
                            let node = graph.node(NodeId(node_idx));
                            let display = node.display_name(node_idx);
                            let pe = instances.get_mut(&node_idx).expect("instance exists");
                            let mut emitted: Vec<(String, Data)> = Vec::new();
                            {
                                let mut emit =
                                    |p: &str, d: Data| emitted.push((p.to_string(), d));
                                let log = |line: String| sink.push(line);
                                let mut ctx = Context::new(
                                    &display,
                                    w,
                                    *counts.get(&node_idx).unwrap_or(&0),
                                    &mut emit,
                                    &log,
                                );
                                pe.teardown(&mut ctx);
                            }
                            for (port, data) in emitted {
                                for edge in graph.out_edges(NodeId(node_idx)) {
                                    if edge.from_port == port {
                                        local.push_back((
                                            edge.to.0,
                                            edge.to_port.clone(),
                                            data.clone(),
                                        ));
                                    }
                                }
                            }
                        }
                        while let Some((node_idx, port, data)) = local.pop_front() {
                            let node = graph.node(NodeId(node_idx));
                            let display = node.display_name(node_idx);
                            let pe = instances
                                .entry(node_idx)
                                .or_insert_with(|| node.factory.create());
                            let mut emitted: Vec<(String, Data)> = Vec::new();
                            {
                                let mut emit =
                                    |p: &str, d: Data| emitted.push((p.to_string(), d));
                                let log = |line: String| sink.push(line);
                                let mut ctx = Context::new(
                                    &display,
                                    w,
                                    *counts.get(&node_idx).unwrap_or(&0),
                                    &mut emit,
                                    &log,
                                );
                                pe.process(Some((port, data)), &mut ctx);
                            }
                            *counts.entry(node_idx).or_insert(0) += 1;
                            for (port, data) in emitted {
                                for edge in graph.out_edges(NodeId(node_idx)) {
                                    if edge.from_port == port {
                                        local.push_back((
                                            edge.to.0,
                                            edge.to_port.clone(),
                                            data.clone(),
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }

                for (node_idx, n) in counts {
                    let display = graph.node(NodeId(node_idx)).display_name(node_idx);
                    monitor.record(&display, w, n);
                }
                Ok(())
            }));
        }

        // Autoscaler: runs on this thread until the broker drains.
        while !broker.is_done() {
            if cfg.autoscale {
                let depth = broker.depth();
                let act = active.load(Ordering::SeqCst);
                if act < cfg.max_workers && depth > cfg.scale_threshold * act {
                    active.store(act + 1, Ordering::SeqCst);
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(p) => Err(GraphError::WorkerPanicked(super::panic_message(p))),
            })
            .collect()
    });
    result?;
    if let Some(msg) = broker.failure.lock().take() {
        return Err(GraphError::WorkerPanicked(msg));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::error::GraphError;
    use crate::mapping::{run, DynamicConfig, Mapping, RunInput};
    use crate::prelude::*;
    use crate::workflows;

    fn sorted(mut v: Vec<String>) -> Vec<String> {
        v.sort();
        v
    }

    fn dyn_mapping(initial: usize, max: usize) -> Mapping {
        Mapping::Dynamic(DynamicConfig {
            initial_workers: initial,
            max_workers: max,
            autoscale: true,
            scale_threshold: 4,
        })
    }

    #[test]
    fn matches_simple_mapping_output_multiset() {
        let seq = run(&workflows::doubler_graph(), RunInput::Iterations(25), &Mapping::Simple).unwrap();
        let dynr = run(&workflows::doubler_graph(), RunInput::Iterations(25), &dyn_mapping(2, 4)).unwrap();
        assert_eq!(sorted(seq.lines().to_vec()), sorted(dynr.lines().to_vec()));
    }

    #[test]
    fn isprime_dynamic_end_to_end() {
        let r = run(&workflows::isprime_graph(), RunInput::Iterations(25), &dyn_mapping(3, 6)).unwrap();
        for line in r.lines() {
            assert!(line.contains("is prime"), "{line}");
        }
        let total: u64 = r.counts.values().sum();
        assert!(total >= 25);
    }

    #[test]
    fn zero_iterations_finish_immediately() {
        let r = run(&workflows::doubler_graph(), RunInput::Iterations(0), &dyn_mapping(2, 4)).unwrap();
        assert!(r.lines().is_empty());
    }

    #[test]
    fn invalid_worker_config_rejected() {
        let err = run(
            &workflows::doubler_graph(),
            RunInput::Iterations(1),
            &Mapping::Dynamic(DynamicConfig {
                initial_workers: 0,
                max_workers: 0,
                autoscale: false,
                scale_threshold: 1,
            }),
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::InvalidProcessCount { .. }));
    }

    #[test]
    fn data_input_feeds_dynamic_roots() {
        let mut g = WorkflowGraph::new("w");
        let a = g.add(IterativePE::new("Inc", |d: Data| {
            Some(Data::from(d.as_int().unwrap_or(0) + 1))
        }));
        let b = g.add(workflows::print_consumer("Out"));
        g.connect(a, OUTPUT, b, INPUT).unwrap();
        let r = run(
            &g,
            RunInput::Data(vec![Data::from(5i64), Data::from(6i64)]),
            &dyn_mapping(2, 2),
        )
        .unwrap();
        assert_eq!(sorted(r.lines().to_vec()), vec!["got 6", "got 7"]);
    }

    #[test]
    fn autoscaler_activates_extra_workers_under_load() {
        // Many tasks + slow PE → queue builds up → autoscaler must engage
        // more than the initial worker count.
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(1000));
        let slow = g.add(IterativePE::new("Slow", |d: Data| {
            std::thread::sleep(std::time::Duration::from_micros(300));
            Some(d)
        }));
        let sink = g.add(workflows::print_consumer("S"));
        g.connect(src, OUTPUT, slow, INPUT).unwrap();
        g.connect(slow, OUTPUT, sink, INPUT).unwrap();
        let r = run(&g, RunInput::Iterations(200), &dyn_mapping(1, 6)).unwrap();
        // Distinct workers that actually processed something:
        let workers: std::collections::HashSet<usize> =
            r.counts.keys().map(|(_, w)| *w).collect();
        assert!(workers.len() > 1, "autoscaler never engaged: {:?}", r.counts);
        assert_eq!(r.lines().len(), 200);
    }

    #[test]
    fn worker_panic_reported() {
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(10));
        let boom = g.add(IterativePE::new("Boom", |_d: Data| -> Option<Data> {
            panic!("dynamic test panic")
        }));
        g.connect(src, OUTPUT, boom, INPUT).unwrap();
        let err = run(&g, RunInput::Iterations(2), &dyn_mapping(2, 2)).unwrap_err();
        assert!(matches!(err, GraphError::WorkerPanicked(_)));
    }
}
