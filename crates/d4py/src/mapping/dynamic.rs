//! The *dynamic* mapping: adaptive workload allocation through a shared
//! work queue (dispel4py's *Redis* mapping; Liang et al. 2022).
//!
//! Instead of pinning ranks to PEs statically, every datum becomes a task
//! in a broker queue and any worker may execute any PE. Workers keep one
//! instance per PE (lazily created), so stateless and per-worker-stateful
//! PEs work naturally; key-partitioned state requires the static mapping's
//! `GroupBy`, the same restriction the real Redis mapping has.
//!
//! Auto-provisioning (paper §III "auto-provisioning", §IV "dynamic process
//! allocation") is simulated with an autoscaler: when queue depth per
//! active worker exceeds a threshold, another pre-spawned worker is
//! activated, up to `max_workers`.
//!
//! Fault model: every PE invocation runs under the run's [`Supervisor`]
//! (`catch_unwind` + the run's [`FaultPolicy`](crate::fault::FaultPolicy)).
//! With a per-task timeout set, the autoscaler thread doubles as a task
//! supervisor: a task still running past the budget is *abandoned* (its
//! late completion is discarded), the hung worker is detached, and a fresh
//! pre-spawned worker is activated in its place — the same machinery a
//! scale-up uses. The abandoned task is then retried, dead-lettered, or
//! fails the run, per policy. A worker hung forever still delays final
//! scope join, but the stream keeps flowing on its replacement in the
//! meantime (bounded stragglers — the common chaos case — fully recover).

use crate::data::Data;
use crate::error::GraphError;
use crate::fault::{FaultPolicy, Supervised, Supervisor};
use crate::graph::{NodeId, WorkflowGraph};
use crate::mapping::{DynamicConfig, RunInput};
use crate::monitor::{Monitor, OutputSink};
use crate::pe::{Context, PE};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What a task does; cloneable so the timeout supervisor can requeue it.
#[derive(Clone)]
enum TaskKind {
    /// Drive a producer once with the given iteration index.
    Produce { node: usize, iteration: u64 },
    /// Deliver a datum to a PE's input port.
    Item { node: usize, port: String, data: Data },
}

/// One unit of work in the broker queue.
#[derive(Clone)]
struct Task {
    /// Unique per run; keys the abandoned-task set.
    id: u64,
    /// Timed-out attempts so far (timeout retries requeue with +1).
    attempts: u32,
    kind: TaskKind,
}

/// What a worker is executing right now, visible to the timeout supervisor.
struct ActiveTask {
    task: Task,
    started: Instant,
}

/// The simulated Redis broker: FIFO queue + in-flight accounting.
struct Broker {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
    in_flight: AtomicUsize,
    done: AtomicBool,
    failure: Mutex<Option<GraphError>>,
    next_id: AtomicU64,
    /// Tasks the timeout supervisor gave up waiting for; the worker that
    /// eventually finishes one discards its results.
    abandoned: Mutex<HashSet<u64>>,
}

impl Broker {
    fn new() -> Self {
        Broker {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            failure: Mutex::new(None),
            next_id: AtomicU64::new(0),
            abandoned: Mutex::new(HashSet::new()),
        }
    }

    fn submit(&self, attempts: u32, kind: TaskKind) {
        let task = Task {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            attempts,
            kind,
        };
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().push_back(task);
        self.available.notify_one();
    }

    /// Pop with a short wait; `None` means "check termination".
    fn pop(&self) -> Option<Task> {
        let mut q = self.queue.lock();
        if let Some(t) = q.pop_front() {
            return Some(t);
        }
        self.available.wait_for(&mut q, Duration::from_millis(2));
        q.pop_front()
    }

    /// Called after fully accounting for one task (children already
    /// pushed). When the last task completes, wakes everyone up.
    fn finish_one(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.done.store(true, Ordering::SeqCst);
            self.available.notify_all();
        }
    }

    fn depth(&self) -> usize {
        self.queue.lock().len()
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Abort the run: record the first failure and release all waiters.
    fn fail(&self, err: GraphError) {
        let mut f = self.failure.lock();
        if f.is_none() {
            *f = Some(err);
        }
        drop(f);
        self.done.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }
}

/// (PE display name, port, datum) of a task, for dead-letter records.
fn describe_task(graph: &WorkflowGraph, kind: &TaskKind) -> (String, Option<String>, Option<Data>) {
    match kind {
        TaskKind::Produce { node, .. } => {
            (graph.node(NodeId(*node)).display_name(*node), None, None)
        }
        TaskKind::Item { node, port, data } => (
            graph.node(NodeId(*node)).display_name(*node),
            Some(port.clone()),
            Some(data.clone()),
        ),
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn execute(
    graph: &WorkflowGraph,
    input: &RunInput,
    cfg: &DynamicConfig,
    sink: &OutputSink,
    monitor: &Monitor,
    supervisor: &Supervisor,
    task_timeout: Option<Duration>,
) -> Result<(), GraphError> {
    if cfg.initial_workers == 0 || cfg.max_workers < cfg.initial_workers {
        return Err(GraphError::InvalidProcessCount {
            requested: cfg.initial_workers,
            minimum: 1,
        });
    }
    let broker = Broker::new();
    let active_workers = AtomicUsize::new(cfg.initial_workers);
    // Per-worker execution slots (for the timeout supervisor) and detach
    // flags (a detached worker retires after its current task).
    let slots: Vec<Mutex<Option<ActiveTask>>> =
        (0..cfg.max_workers).map(|_| Mutex::new(None)).collect();
    let detached: Vec<AtomicBool> = (0..cfg.max_workers).map(|_| AtomicBool::new(false)).collect();

    // Seed the queue from the run input.
    let roots = graph.roots();
    match input {
        RunInput::Iterations(n) => {
            for &r in &roots {
                for i in 0..*n {
                    broker.submit(
                        0,
                        TaskKind::Produce {
                            node: r.0,
                            iteration: i,
                        },
                    );
                }
            }
        }
        RunInput::Data(items) => {
            for &r in &roots {
                let node = graph.node(r);
                let first_input = node.ports.inputs.first().cloned();
                for (i, d) in items.iter().enumerate() {
                    match &first_input {
                        Some(port) => broker.submit(
                            0,
                            TaskKind::Item {
                                node: r.0,
                                port: port.clone(),
                                data: d.clone(),
                            },
                        ),
                        None => broker.submit(
                            0,
                            TaskKind::Produce {
                                node: r.0,
                                iteration: i as u64,
                            },
                        ),
                    }
                }
            }
        }
    }
    if broker.in_flight.load(Ordering::SeqCst) == 0 {
        return Ok(()); // nothing to do
    }

    let result: Result<Vec<()>, GraphError> = std::thread::scope(|scope| {
        let broker = &broker;
        let active = &active_workers;
        let slots = &slots;
        let detached = &detached;
        let mut handles = Vec::new();

        // Workers 0..max are pre-spawned; worker w only pulls while
        // `w < active` (the autoscaler raises `active`, both for load
        // scale-ups and to replace a detached worker).
        for w in 0..cfg.max_workers {
            let sink = sink.clone();
            let monitor = monitor.clone();
            handles.push(scope.spawn(move || -> Result<(), GraphError> {
                let mut instances: HashMap<usize, Box<dyn PE>> = HashMap::new();
                let mut counts: HashMap<usize, u64> = HashMap::new();
                loop {
                    if broker.is_done() || detached[w].load(Ordering::SeqCst) {
                        break;
                    }
                    if w >= active.load(Ordering::SeqCst) {
                        // Inactive (not yet provisioned): idle-wait.
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    let Some(task) = broker.pop() else { continue };
                    let (node_idx, call, iteration) = match &task.kind {
                        TaskKind::Produce { node, iteration } => (*node, None, *iteration),
                        TaskKind::Item { node, port, data } => {
                            let it = *counts.get(node).unwrap_or(&0);
                            (*node, Some((port.clone(), data.clone())), it)
                        }
                    };
                    let node = graph.node(NodeId(node_idx));
                    let display = node.display_name(node_idx);
                    let pe = instances
                        .entry(node_idx)
                        .or_insert_with(|| node.factory.create());
                    *slots[w].lock() = Some(ActiveTask {
                        task: task.clone(),
                        started: Instant::now(),
                    });
                    let mut emitted: Vec<(String, Data)> = Vec::new();
                    let outcome = supervisor.invoke(
                        &display,
                        call.as_ref().map(|(p, _)| p.as_str()),
                        call.as_ref().map(|(_, d)| d),
                        &mut || {
                            // Each attempt restarts the timeout clock.
                            if let Some(a) = slots[w].lock().as_mut() {
                                a.started = Instant::now();
                            }
                            emitted.clear();
                            let mut emit = |p: &str, d: Data| emitted.push((p.to_string(), d));
                            let log = |line: String| sink.push(line);
                            let mut ctx = Context::new(&display, w, iteration, &mut emit, &log);
                            pe.process(call.clone(), &mut ctx);
                        },
                    );
                    *slots[w].lock() = None;
                    if broker.abandoned.lock().remove(&task.id) {
                        // The timeout supervisor already accounted for this
                        // task (requeue / dead-letter / abort) — discard
                        // this late completion; the detach check at the top
                        // of the loop retires the worker.
                        continue;
                    }
                    match outcome {
                        Err(e) => {
                            broker.fail(e);
                            break;
                        }
                        Ok(Supervised::DeadLettered) => {
                            broker.finish_one();
                            continue;
                        }
                        Ok(Supervised::Done) => {}
                    }
                    *counts.entry(node_idx).or_insert(0) += 1;
                    // Route children before finishing this task, so
                    // in-flight never drops to zero while work remains.
                    // Grouping degenerates to "any worker" here: the broker
                    // has no rank concept (the real Redis mapping shares the
                    // restriction for key-partitioned state).
                    for (port, data) in emitted {
                        for edge in graph.out_edges(NodeId(node_idx)) {
                            if edge.from_port == port {
                                broker.submit(
                                    0,
                                    TaskKind::Item {
                                        node: edge.to.0,
                                        port: edge.to_port.clone(),
                                        data: data.clone(),
                                    },
                                );
                            }
                        }
                    }
                    broker.finish_one();
                }
                // Teardown phase: flush terminal aggregates. Teardown
                // emissions are drained *locally* on this worker (the
                // broker has already terminated), which mirrors the real
                // Redis mapping's per-consumer state semantics.
                if broker.failure.lock().is_none() {
                    let mut torn: HashSet<usize> = HashSet::new();
                    let mut local: VecDeque<(usize, String, Data)> = VecDeque::new();
                    'teardown: loop {
                        let pending: Vec<usize> = instances
                            .keys()
                            .copied()
                            .filter(|n| !torn.contains(n))
                            .collect();
                        if pending.is_empty() && local.is_empty() {
                            break;
                        }
                        for node_idx in pending {
                            torn.insert(node_idx);
                            let node = graph.node(NodeId(node_idx));
                            let display = node.display_name(node_idx);
                            let Some(pe) = instances.get_mut(&node_idx) else {
                                continue;
                            };
                            let it = *counts.get(&node_idx).unwrap_or(&0);
                            let mut emitted: Vec<(String, Data)> = Vec::new();
                            let outcome = supervisor.invoke(&display, None, None, &mut || {
                                emitted.clear();
                                let mut emit =
                                    |p: &str, d: Data| emitted.push((p.to_string(), d));
                                let log = |line: String| sink.push(line);
                                let mut ctx = Context::new(&display, w, it, &mut emit, &log);
                                pe.teardown(&mut ctx);
                            });
                            match outcome {
                                Err(e) => {
                                    broker.fail(e);
                                    break 'teardown;
                                }
                                Ok(Supervised::DeadLettered) => continue,
                                Ok(Supervised::Done) => {}
                            }
                            for (port, data) in emitted {
                                for edge in graph.out_edges(NodeId(node_idx)) {
                                    if edge.from_port == port {
                                        local.push_back((
                                            edge.to.0,
                                            edge.to_port.clone(),
                                            data.clone(),
                                        ));
                                    }
                                }
                            }
                        }
                        while let Some((node_idx, port, data)) = local.pop_front() {
                            let node = graph.node(NodeId(node_idx));
                            let display = node.display_name(node_idx);
                            let pe = instances
                                .entry(node_idx)
                                .or_insert_with(|| node.factory.create());
                            let it = *counts.get(&node_idx).unwrap_or(&0);
                            let mut emitted: Vec<(String, Data)> = Vec::new();
                            let outcome = supervisor.invoke(
                                &display,
                                Some(&port),
                                Some(&data),
                                &mut || {
                                    emitted.clear();
                                    let mut emit =
                                        |p: &str, d: Data| emitted.push((p.to_string(), d));
                                    let log = |line: String| sink.push(line);
                                    let mut ctx =
                                        Context::new(&display, w, it, &mut emit, &log);
                                    pe.process(Some((port.clone(), data.clone())), &mut ctx);
                                },
                            );
                            match outcome {
                                Err(e) => {
                                    broker.fail(e);
                                    break 'teardown;
                                }
                                Ok(Supervised::DeadLettered) => continue,
                                Ok(Supervised::Done) => {}
                            }
                            *counts.entry(node_idx).or_insert(0) += 1;
                            for (port, data) in emitted {
                                for edge in graph.out_edges(NodeId(node_idx)) {
                                    if edge.from_port == port {
                                        local.push_back((
                                            edge.to.0,
                                            edge.to_port.clone(),
                                            data.clone(),
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }

                for (node_idx, n) in counts {
                    let display = graph.node(NodeId(node_idx)).display_name(node_idx);
                    monitor.record(&display, w, n);
                }
                Ok(())
            }));
        }

        // Autoscaler + task supervisor: runs on this thread until the
        // broker drains.
        while !broker.is_done() {
            if cfg.autoscale {
                let depth = broker.depth();
                let act = active.load(Ordering::SeqCst);
                if act < cfg.max_workers && depth > cfg.scale_threshold * act {
                    active.store(act + 1, Ordering::SeqCst);
                }
            }
            if let Some(timeout) = task_timeout {
                for w in 0..cfg.max_workers {
                    let mut slot = slots[w].lock();
                    let overdue = slot
                        .as_ref()
                        .map_or(false, |a| a.started.elapsed() >= timeout);
                    if !overdue {
                        continue;
                    }
                    let Some(abandoned_task) = slot.take() else { continue };
                    let newly = broker.abandoned.lock().insert(abandoned_task.task.id);
                    drop(slot);
                    if !newly {
                        continue;
                    }
                    let task = abandoned_task.task;
                    supervisor.note_task_timeout();
                    supervisor.note_fault();
                    // Detach the hung worker; activate a fresh pre-spawned
                    // one in its place (autoscaler machinery).
                    if !detached[w].swap(true, Ordering::SeqCst) {
                        let act = active.load(Ordering::SeqCst);
                        if act < cfg.max_workers {
                            active.store(act + 1, Ordering::SeqCst);
                        }
                        supervisor.note_worker_replacement();
                    }
                    let (pe, port, datum) = describe_task(graph, &task.kind);
                    let timeout_ms = timeout.as_millis() as u64;
                    match supervisor.policy() {
                        FaultPolicy::FailFast => {
                            broker.fail(GraphError::TaskTimedOut { pe, timeout_ms });
                        }
                        FaultPolicy::Retry { max_attempts, .. } => {
                            if task.attempts + 1 < (*max_attempts).max(1) {
                                supervisor.note_retry();
                                broker.submit(task.attempts + 1, task.kind.clone());
                                broker.finish_one();
                            } else {
                                broker.fail(GraphError::TaskTimedOut { pe, timeout_ms });
                            }
                        }
                        FaultPolicy::DeadLetter { .. } => {
                            supervisor.dead_letter(
                                &pe,
                                port.as_deref(),
                                datum,
                                format!("task timed out after {timeout_ms} ms"),
                                task.attempts + 1,
                            );
                            broker.finish_one();
                        }
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(p) => Err(GraphError::WorkerPanicked(super::panic_message(p))),
            })
            .collect()
    });
    result?;
    if let Some(err) = broker.failure.lock().take() {
        return Err(err);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::error::GraphError;
    use crate::mapping::{run, run_with_options, DynamicConfig, Mapping, RunInput};
    use crate::monitor::OutputSink;
    use crate::prelude::*;
    use crate::workflows;
    use std::time::Duration;

    fn sorted(mut v: Vec<String>) -> Vec<String> {
        v.sort();
        v
    }

    fn dyn_mapping(initial: usize, max: usize) -> Mapping {
        Mapping::Dynamic(DynamicConfig {
            initial_workers: initial,
            max_workers: max,
            autoscale: true,
            scale_threshold: 4,
        })
    }

    #[test]
    fn matches_simple_mapping_output_multiset() {
        let seq = run(&workflows::doubler_graph(), RunInput::Iterations(25), &Mapping::Simple).unwrap();
        let dynr = run(&workflows::doubler_graph(), RunInput::Iterations(25), &dyn_mapping(2, 4)).unwrap();
        assert_eq!(sorted(seq.lines().to_vec()), sorted(dynr.lines().to_vec()));
    }

    #[test]
    fn isprime_dynamic_end_to_end() {
        let r = run(&workflows::isprime_graph(), RunInput::Iterations(25), &dyn_mapping(3, 6)).unwrap();
        for line in r.lines() {
            assert!(line.contains("is prime"), "{line}");
        }
        let total: u64 = r.counts.values().sum();
        assert!(total >= 25);
    }

    #[test]
    fn zero_iterations_finish_immediately() {
        let r = run(&workflows::doubler_graph(), RunInput::Iterations(0), &dyn_mapping(2, 4)).unwrap();
        assert!(r.lines().is_empty());
    }

    #[test]
    fn invalid_worker_config_rejected() {
        let err = run(
            &workflows::doubler_graph(),
            RunInput::Iterations(1),
            &Mapping::Dynamic(DynamicConfig {
                initial_workers: 0,
                max_workers: 0,
                autoscale: false,
                scale_threshold: 1,
            }),
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::InvalidProcessCount { .. }));
    }

    #[test]
    fn data_input_feeds_dynamic_roots() {
        let mut g = WorkflowGraph::new("w");
        let a = g.add(IterativePE::new("Inc", |d: Data| {
            Some(Data::from(d.as_int().unwrap_or(0) + 1))
        }));
        let b = g.add(workflows::print_consumer("Out"));
        g.connect(a, OUTPUT, b, INPUT).unwrap();
        let r = run(
            &g,
            RunInput::Data(vec![Data::from(5i64), Data::from(6i64)]),
            &dyn_mapping(2, 2),
        )
        .unwrap();
        assert_eq!(sorted(r.lines().to_vec()), vec!["got 6", "got 7"]);
    }

    #[test]
    fn autoscaler_activates_extra_workers_under_load() {
        // Many tasks + slow PE → queue builds up → autoscaler must engage
        // more than the initial worker count.
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(1000));
        let slow = g.add(IterativePE::new("Slow", |d: Data| {
            std::thread::sleep(std::time::Duration::from_micros(300));
            Some(d)
        }));
        let sink = g.add(workflows::print_consumer("S"));
        g.connect(src, OUTPUT, slow, INPUT).unwrap();
        g.connect(slow, OUTPUT, sink, INPUT).unwrap();
        let r = run(&g, RunInput::Iterations(200), &dyn_mapping(1, 6)).unwrap();
        // Distinct workers that actually processed something:
        let workers: std::collections::HashSet<usize> =
            r.counts.keys().map(|(_, w)| *w).collect();
        assert!(workers.len() > 1, "autoscaler never engaged: {:?}", r.counts);
        assert_eq!(r.lines().len(), 200);
    }

    #[test]
    fn worker_panic_reported() {
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(10));
        let boom = g.add(IterativePE::new("Boom", |_d: Data| -> Option<Data> {
            panic!("dynamic test panic")
        }));
        g.connect(src, OUTPUT, boom, INPUT).unwrap();
        let err = run(&g, RunInput::Iterations(2), &dyn_mapping(2, 2)).unwrap_err();
        assert!(matches!(err, GraphError::WorkerPanicked(_)));
    }

    #[test]
    fn dead_letter_policy_keeps_dynamic_stream_flowing() {
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(100));
        let picky = g.add(IterativePE::new("Picky", |d: Data| {
            let v = d.as_int().unwrap_or(0);
            if v % 5 == 0 {
                panic!("refuses multiples of five: {v}");
            }
            Some(d)
        }));
        let sink = g.add(workflows::print_consumer("Out"));
        g.connect(src, OUTPUT, picky, INPUT).unwrap();
        g.connect(picky, OUTPUT, sink, INPUT).unwrap();
        let r = run_with_options(
            &g,
            RunInput::Iterations(10),
            &dyn_mapping(2, 4),
            OutputSink::new(),
            &RunOptions {
                fault_policy: FaultPolicy::DeadLetter { max_attempts: 1 },
                task_timeout: None,
            },
        )
        .unwrap();
        // 0 and 5 dead-lettered; the other eight delivered.
        assert_eq!(r.lines().len(), 8, "{:?}", r.lines());
        assert_eq!(r.dead_letters.len(), 2);
        assert_eq!(r.fault_stats.dead_letters, 2);
    }

    #[test]
    fn hung_task_times_out_and_worker_is_replaced() {
        // One datum hangs far past the timeout; under DeadLetter the task
        // is abandoned, its worker detached and replaced, and the rest of
        // the stream completes.
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(100));
        let slowpoke = g.add(IterativePE::new("Slowpoke", |d: Data| {
            if d.as_int().unwrap_or(0) == 3 {
                std::thread::sleep(Duration::from_millis(400));
            }
            Some(d)
        }));
        let sink = g.add(workflows::print_consumer("Out"));
        g.connect(src, OUTPUT, slowpoke, INPUT).unwrap();
        g.connect(slowpoke, OUTPUT, sink, INPUT).unwrap();
        let r = run_with_options(
            &g,
            RunInput::Iterations(8),
            &Mapping::Dynamic(DynamicConfig {
                initial_workers: 1,
                max_workers: 4,
                autoscale: false,
                scale_threshold: 4,
            }),
            OutputSink::new(),
            &RunOptions {
                fault_policy: FaultPolicy::DeadLetter { max_attempts: 1 },
                task_timeout: Some(Duration::from_millis(40)),
            },
        )
        .unwrap();
        assert_eq!(r.dead_letters.len(), 1, "{:?}", r.dead_letters);
        assert_eq!(r.dead_letters[0].pe, "Slowpoke1");
        assert_eq!(r.dead_letters[0].datum, Some(Data::from(3i64)));
        assert!(r.dead_letters[0].error.contains("timed out"));
        assert_eq!(r.fault_stats.task_timeouts, 1);
        assert_eq!(r.fault_stats.worker_replacements, 1);
        // The other seven datums were delivered.
        assert_eq!(r.lines().len(), 7, "{:?}", r.lines());
    }

    #[test]
    fn hung_task_fails_fast_with_typed_timeout() {
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(100));
        let hang = g.add(IterativePE::new("Hang", |_d: Data| {
            std::thread::sleep(Duration::from_millis(300));
            None
        }));
        g.connect(src, OUTPUT, hang, INPUT).unwrap();
        let err = run_with_options(
            &g,
            RunInput::Iterations(1),
            &dyn_mapping(1, 2),
            OutputSink::new(),
            &RunOptions {
                fault_policy: FaultPolicy::FailFast,
                task_timeout: Some(Duration::from_millis(30)),
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, GraphError::TaskTimedOut { ref pe, .. } if pe == "Hang1"),
            "{err:?}"
        );
    }
}
