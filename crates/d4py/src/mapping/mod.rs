//! Mappings: enacting an abstract workflow on an execution system
//! (paper §II-A "Mappings" / "Concrete Workflow").
//!
//! | dispel4py | here | characteristics |
//! |---|---|---|
//! | *simple* | [`Mapping::Simple`] | sequential, single instance per PE |
//! | *multiprocessing* | [`Mapping::Multi`] | static rank partition over OS threads, channel-connected |
//! | *redis* (dynamic) | [`Mapping::Dynamic`] | shared work queue, autoscaling worker pool |

pub mod dynamic;
pub mod multi;
pub mod simple;

use crate::data::Data;
use crate::error::GraphError;
use crate::fault::{DeadLetterEntry, FaultStats, RunOptions, Supervisor};
use crate::graph::WorkflowGraph;
use crate::monitor::{Monitor, OutputSink};
use std::collections::BTreeMap;
use std::time::Duration;

/// Configuration of the dynamic (Redis-style) mapping.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Workers active at start.
    pub initial_workers: usize,
    /// Upper bound the autoscaler may grow to.
    pub max_workers: usize,
    /// Enable autoscaling (auto-provisioning, paper §III).
    pub autoscale: bool,
    /// Queue-depth-per-worker threshold that triggers a scale-up.
    pub scale_threshold: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            initial_workers: 2,
            max_workers: 8,
            autoscale: true,
            scale_threshold: 8,
        }
    }
}

/// The execution mapping selected at run time (the paper's
/// `run` / `run_multiprocess` / `run_dynamic` client functions).
#[derive(Clone)]
pub enum Mapping {
    /// Sequential enactment.
    Simple,
    /// Static workload distribution over `processes` ranks.
    Multi { processes: usize },
    /// Dynamic workload allocation with a work-queue broker.
    Dynamic(DynamicConfig),
}

/// What to feed the workflow's root PE(s).
#[derive(Debug, Clone)]
pub enum RunInput {
    /// Drive producers for `n` iterations (the CLI's `-i 10`).
    Iterations(u64),
    /// Feed explicit data items to root PEs with an input port; producers
    /// are driven once per item.
    Data(Vec<Data>),
}

impl RunInput {
    pub fn len(&self) -> usize {
        match self {
            RunInput::Iterations(n) => *n as usize,
            RunInput::Data(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of an enactment.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub workflow: String,
    /// The captured output stream (PE `ctx.log` lines), in emission order.
    lines: Vec<String>,
    /// Per-(PE display name, rank) iteration counts.
    pub counts: BTreeMap<(String, usize), u64>,
    /// Fig. 5b-style rank partition, for `Multi` runs.
    pub partition: Option<Vec<std::ops::Range<usize>>>,
    pub duration: Duration,
    /// Datums the supervisor gave up on (`FaultPolicy::DeadLetter` only),
    /// in canonical sorted order — a deterministic set for same-seed runs.
    pub dead_letters: Vec<DeadLetterEntry>,
    /// Fault/retry/timeout counters for this run.
    pub fault_stats: FaultStats,
}

impl RunResult {
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Verbose report: partition, output lines, per-rank summaries —
    /// the shape of the paper's Fig. 5b console transcript.
    pub fn verbose_report(&self) -> String {
        let mut out = String::new();
        if let Some(p) = &self.partition {
            out.push('{');
            let bits: Vec<String> = p
                .iter()
                .enumerate()
                .map(|(i, r)| format!("'{}': range({}, {})", format!("PE{i}"), r.start, r.end))
                .collect();
            out.push_str(&bits.join(", "));
            out.push_str("}\n");
        }
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        for ((pe, rank), n) in &self.counts {
            out.push_str(&format!("{pe} (rank {rank}): Processed {n} iterations.\n"));
        }
        out
    }
}

pub(crate) fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Enact `graph` with the given input and mapping, capturing output.
pub fn run(graph: &WorkflowGraph, input: RunInput, mapping: &Mapping) -> Result<RunResult, GraphError> {
    let sink = OutputSink::new();
    run_with_sink(graph, input, mapping, sink)
}

/// Enact with a caller-supplied sink (the execution engine passes a sink
/// with a streaming tap — §IV-E).
pub fn run_with_sink(
    graph: &WorkflowGraph,
    input: RunInput,
    mapping: &Mapping,
    sink: OutputSink,
) -> Result<RunResult, GraphError> {
    run_with_options(graph, input, mapping, sink, &RunOptions::default())
}

/// Enact under an explicit [`RunOptions`] — fault policy and (for the
/// dynamic mapping) per-task timeout. `run`/`run_with_sink` delegate here
/// with the default `FailFast` policy.
pub fn run_with_options(
    graph: &WorkflowGraph,
    input: RunInput,
    mapping: &Mapping,
    sink: OutputSink,
    options: &RunOptions,
) -> Result<RunResult, GraphError> {
    graph.validate()?;
    let monitor = Monitor::new();
    let supervisor = Supervisor::new(options.fault_policy.clone());
    let start = std::time::Instant::now();
    let partition = match mapping {
        Mapping::Simple => {
            simple::execute(graph, &input, &sink, &monitor, &supervisor)?;
            None
        }
        Mapping::Multi { processes } => {
            let p = multi::execute(graph, &input, *processes, &sink, &monitor, &supervisor)?;
            Some(p)
        }
        Mapping::Dynamic(cfg) => {
            dynamic::execute(
                graph,
                &input,
                cfg,
                &sink,
                &monitor,
                &supervisor,
                options.task_timeout,
            )?;
            None
        }
    };
    Ok(RunResult {
        workflow: graph.name.clone(),
        lines: sink.lines(),
        counts: monitor.counts(),
        partition,
        duration: start.elapsed(),
        dead_letters: supervisor.take_dead_letters(),
        fault_stats: supervisor.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_input_len() {
        assert_eq!(RunInput::Iterations(5).len(), 5);
        assert_eq!(RunInput::Data(vec![Data::Null]).len(), 1);
        assert!(RunInput::Iterations(0).is_empty());
    }

    #[test]
    fn dynamic_config_defaults_sane() {
        let c = DynamicConfig::default();
        assert!(c.initial_workers >= 1);
        assert!(c.max_workers >= c.initial_workers);
        assert!(c.autoscale);
    }
}
