//! The *simple* (sequential) mapping: one instance per PE, breadth-first
//! propagation through the DAG on a work queue. Reference semantics for the
//! parallel mappings — every mapping must produce the same multiset of
//! output lines for a deterministic workflow.
//!
//! Every PE invocation runs under the run's [`Supervisor`]: a panicking PE
//! no longer unwinds through the caller — it fails fast with a typed
//! error, is retried, or dead-letters the datum, per the run's
//! [`FaultPolicy`](crate::fault::FaultPolicy).

use crate::data::Data;
use crate::error::GraphError;
use crate::fault::{Supervised, Supervisor};
use crate::graph::{NodeId, WorkflowGraph};
use crate::mapping::RunInput;
use crate::monitor::{Monitor, OutputSink};
use crate::pe::{Context, PE};
use std::collections::VecDeque;

pub(crate) fn execute(
    graph: &WorkflowGraph,
    input: &RunInput,
    sink: &OutputSink,
    monitor: &Monitor,
    supervisor: &Supervisor,
) -> Result<(), GraphError> {
    let order = graph.topo_order()?;
    let mut instances: Vec<Box<dyn PE>> = graph.nodes.iter().map(|n| n.factory.create()).collect();
    let mut iteration_counts = vec![0u64; graph.nodes.len()];

    // Pending work: (node, port, datum).
    let mut queue: VecDeque<(NodeId, String, Data)> = VecDeque::new();

    // Setup phase (topological order, as dispel4py does).
    for &n in &order {
        let display = graph.node(n).display_name(n.0);
        let mut emitted: Vec<(String, Data)> = Vec::new();
        let outcome = supervisor.invoke(&display, None, None, &mut || {
            emitted.clear();
            let mut emit = |port: &str, d: Data| emitted.push((port.to_string(), d));
            let log = make_log(sink);
            let mut ctx = Context::new(&display, 0, 0, &mut emit, &log);
            instances[n.0].setup(&mut ctx);
        })?;
        if matches!(outcome, Supervised::Done) {
            route_emitted(graph, n, emitted, &mut queue);
        }
    }

    // Drive roots.
    let roots = graph.roots();
    let feed: Vec<(NodeId, Option<Data>)> = match input {
        RunInput::Iterations(n) => (0..*n)
            .flat_map(|_| roots.iter().map(|&r| (r, None)))
            .collect(),
        RunInput::Data(items) => items
            .iter()
            .flat_map(|d| roots.iter().map(move |&r| (r, Some(d.clone()))))
            .collect(),
    };

    for (i, (root, datum)) in feed.into_iter().enumerate() {
        let node = graph.node(root);
        let display = node.display_name(root.0);
        let call_input = match (datum, node.ports.inputs.first()) {
            (Some(d), Some(port)) => Some((port.clone(), d)),
            // Data fed to a pure producer just drives one iteration.
            _ => None,
        };
        let mut emitted: Vec<(String, Data)> = Vec::new();
        let outcome = supervisor.invoke(
            &display,
            call_input.as_ref().map(|(p, _)| p.as_str()),
            call_input.as_ref().map(|(_, d)| d),
            &mut || {
                emitted.clear();
                let mut emit = |port: &str, d: Data| emitted.push((port.to_string(), d));
                let log = make_log(sink);
                let mut ctx = Context::new(&display, 0, i as u64, &mut emit, &log);
                instances[root.0].process(call_input.clone(), &mut ctx);
            },
        )?;
        if matches!(outcome, Supervised::DeadLettered) {
            continue;
        }
        iteration_counts[root.0] += 1;
        route_emitted(graph, root, emitted, &mut queue);

        // Fully drain after each root firing: streaming semantics, outputs
        // appear as soon as their inputs exist.
        drain(graph, &mut instances, &mut queue, &mut iteration_counts, sink, supervisor)?;
    }

    // Teardown in topological order.
    for &n in &order {
        let display = graph.node(n).display_name(n.0);
        let mut emitted: Vec<(String, Data)> = Vec::new();
        let outcome = supervisor.invoke(&display, None, None, &mut || {
            emitted.clear();
            let mut emit = |port: &str, d: Data| emitted.push((port.to_string(), d));
            let log = make_log(sink);
            let mut ctx = Context::new(&display, 0, iteration_counts[n.0], &mut emit, &log);
            instances[n.0].teardown(&mut ctx);
        })?;
        if matches!(outcome, Supervised::Done) {
            route_emitted(graph, n, emitted, &mut queue);
        }
        drain(graph, &mut instances, &mut queue, &mut iteration_counts, sink, supervisor)?;
    }

    for (i, count) in iteration_counts.iter().enumerate() {
        let display = graph.node(NodeId(i)).display_name(i);
        monitor.record(&display, 0, *count);
    }
    Ok(())
}

fn make_log(sink: &OutputSink) -> impl Fn(String) + '_ {
    move |line: String| sink.push(line)
}

fn route_emitted(
    graph: &WorkflowGraph,
    from: NodeId,
    emitted: Vec<(String, Data)>,
    queue: &mut VecDeque<(NodeId, String, Data)>,
) {
    for (port, data) in emitted {
        for edge in graph.out_edges(from) {
            if edge.from_port == port {
                queue.push_back((edge.to, edge.to_port.clone(), data.clone()));
            }
        }
    }
}

fn drain(
    graph: &WorkflowGraph,
    instances: &mut [Box<dyn PE>],
    queue: &mut VecDeque<(NodeId, String, Data)>,
    iteration_counts: &mut [u64],
    sink: &OutputSink,
    supervisor: &Supervisor,
) -> Result<(), GraphError> {
    while let Some((node, port, data)) = queue.pop_front() {
        let display = graph.node(node).display_name(node.0);
        let mut emitted: Vec<(String, Data)> = Vec::new();
        let outcome = supervisor.invoke(&display, Some(&port), Some(&data), &mut || {
            emitted.clear();
            let mut emit = |p: &str, d: Data| emitted.push((p.to_string(), d));
            let log = make_log(sink);
            let mut ctx = Context::new(&display, 0, iteration_counts[node.0], &mut emit, &log);
            instances[node.0].process(Some((port.clone(), data.clone())), &mut ctx);
        })?;
        if matches!(outcome, Supervised::DeadLettered) {
            continue;
        }
        iteration_counts[node.0] += 1;
        route_emitted(graph, node, emitted, queue);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::mapping::{run, Mapping, RunInput};
    use crate::prelude::*;
    use crate::workflows;

    #[test]
    fn pipeline_runs_sequentially() {
        let g = workflows::doubler_graph();
        let r = run(&g, RunInput::Iterations(4), &Mapping::Simple).unwrap();
        // Producer emits 0,1,2,3 → doubled 0,2,4,6.
        assert_eq!(r.lines(), &["got 0", "got 2", "got 4", "got 6"]);
    }

    #[test]
    fn iteration_counts_recorded() {
        let g = workflows::doubler_graph();
        let r = run(&g, RunInput::Iterations(3), &Mapping::Simple).unwrap();
        assert_eq!(r.counts.get(&("Numbers0".to_string(), 0)), Some(&3));
        assert_eq!(r.counts.get(&("Double1".to_string(), 0)), Some(&3));
        assert_eq!(r.counts.get(&("Print2".to_string(), 0)), Some(&3));
    }

    #[test]
    fn data_input_feeds_root_with_input_port() {
        let mut g = WorkflowGraph::new("w");
        let a = g.add(IterativePE::new("Inc", |d: Data| {
            Some(Data::from(d.as_int().unwrap_or(0) + 1))
        }));
        let b = g.add(workflows::print_consumer("Out"));
        g.connect(a, OUTPUT, b, INPUT).unwrap();
        let r = run(
            &g,
            RunInput::Data(vec![Data::from(10i64), Data::from(20i64)]),
            &Mapping::Simple,
        )
        .unwrap();
        assert_eq!(r.lines(), &["got 11", "got 21"]);
    }

    #[test]
    fn zero_iterations_produce_nothing() {
        let g = workflows::doubler_graph();
        let r = run(&g, RunInput::Iterations(0), &Mapping::Simple).unwrap();
        assert!(r.lines().is_empty());
    }

    #[test]
    fn fanout_duplicates_to_both_consumers() {
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(5));
        let c1 = g.add(workflows::print_consumer("A"));
        let c2 = g.add(workflows::print_consumer("B"));
        g.connect(src, OUTPUT, c1, INPUT).unwrap();
        g.connect(src, OUTPUT, c2, INPUT).unwrap();
        let r = run(&g, RunInput::Iterations(2), &Mapping::Simple).unwrap();
        assert_eq!(r.lines().len(), 4, "{:?}", r.lines());
    }

    #[test]
    fn multi_output_pe_splits_stream() {
        let g = workflows::word_count_graph();
        let r = run(&g, RunInput::Iterations(3), &Mapping::Simple).unwrap();
        assert!(!r.lines().is_empty());
        // Word counts must accumulate: the last 'stream' count exceeds 1.
        let max_count: i64 = r
            .lines()
            .iter()
            .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
            .max()
            .unwrap_or(0);
        assert!(max_count >= 2, "{:?}", r.lines());
    }

    #[test]
    fn isprime_workflow_end_to_end() {
        let g = workflows::isprime_graph();
        let r = run(&g, RunInput::Iterations(20), &Mapping::Simple).unwrap();
        assert!(!r.lines().is_empty());
        for line in r.lines() {
            assert!(line.contains("is prime"), "{line}");
        }
    }

    #[test]
    fn cyclic_graph_rejected_at_run() {
        let mut g = WorkflowGraph::new("w");
        let a = g.add(workflows::identity_pe("A"));
        let b = g.add(workflows::identity_pe("B"));
        g.connect(a, OUTPUT, b, INPUT).unwrap();
        g.connect(b, OUTPUT, a, INPUT).unwrap();
        assert!(run(&g, RunInput::Iterations(1), &Mapping::Simple).is_err());
    }

    #[test]
    fn panicking_pe_is_typed_not_unwound() {
        // Pre-fault-model, a panicking PE unwound straight through run().
        // Under the default FailFast policy it now surfaces as the same
        // typed error the parallel mappings raise.
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(10));
        let boom = g.add(IterativePE::new("Boom", |_d: Data| -> Option<Data> {
            panic!("sequential boom")
        }));
        g.connect(src, OUTPUT, boom, INPUT).unwrap();
        let err = run(&g, RunInput::Iterations(2), &Mapping::Simple).unwrap_err();
        match err {
            GraphError::WorkerPanicked(msg) => assert!(msg.contains("sequential boom")),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn dead_letter_policy_keeps_stream_flowing() {
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(100));
        let picky = g.add(IterativePE::new("Picky", |d: Data| {
            let v = d.as_int().unwrap_or(0);
            if v % 3 == 0 {
                panic!("refuses multiples of three: {v}");
            }
            Some(d)
        }));
        let sink = g.add(workflows::print_consumer("Out"));
        g.connect(src, OUTPUT, picky, INPUT).unwrap();
        g.connect(picky, OUTPUT, sink, INPUT).unwrap();
        let r = crate::mapping::run_with_options(
            &g,
            RunInput::Iterations(9),
            &Mapping::Simple,
            crate::monitor::OutputSink::new(),
            &RunOptions {
                fault_policy: FaultPolicy::DeadLetter { max_attempts: 1 },
                task_timeout: None,
            },
        )
        .unwrap();
        // 0,3,6 dead-lettered; 1,2,4,5,7,8 delivered.
        assert_eq!(r.lines().len(), 6, "{:?}", r.lines());
        assert_eq!(r.dead_letters.len(), 3);
        assert_eq!(r.fault_stats.dead_letters, 3);
        assert!(r.dead_letters.iter().all(|e| e.pe == "Picky1"));
        assert_eq!(r.dead_letters[0].datum, Some(Data::from(0i64)));
    }

    #[test]
    fn retry_policy_overcomes_transient_faults() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let failures = Arc::new(AtomicU32::new(0));
        let f2 = failures.clone();
        let mut g = WorkflowGraph::new("w");
        let src = g.add(workflows::number_producer(100));
        let flaky = g.add(IterativePE::new("Flaky", move |d: Data| {
            // Fail the first two invocations ever, then behave.
            if f2.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            Some(d)
        }));
        let sink = g.add(workflows::print_consumer("Out"));
        g.connect(src, OUTPUT, flaky, INPUT).unwrap();
        g.connect(flaky, OUTPUT, sink, INPUT).unwrap();
        let r = crate::mapping::run_with_options(
            &g,
            RunInput::Iterations(5),
            &Mapping::Simple,
            crate::monitor::OutputSink::new(),
            &RunOptions {
                fault_policy: FaultPolicy::Retry {
                    max_attempts: 3,
                    backoff: std::time::Duration::ZERO,
                },
                task_timeout: None,
            },
        )
        .unwrap();
        assert_eq!(r.lines().len(), 5, "{:?}", r.lines());
        assert_eq!(r.fault_stats.faults, 2);
        assert_eq!(r.fault_stats.retries, 2);
        assert!(r.dead_letters.is_empty());
    }
}
