//! Chaos/soak suite for the fault-tolerant enactment substrate: every
//! mapping (Simple / Multi / Dynamic) crossed with every fault policy
//! (FailFast / Retry / DeadLetter) under deterministically injected
//! faults.
//!
//! All chaos here is seeded ([`ChaosConfig::seed`]) and keyed by datum
//! content, so every assertion below is exact, not statistical: the same
//! seed produces the same injected fates on every run, on every mapping,
//! regardless of worker scheduling. The soak test leans on that — five
//! same-seed runs must produce *bit-identical* dead-letter queues.

use d4py::{
    inject_chaos, run_with_options, ChaosConfig, ConsumerPE, Context, Data, DynamicConfig,
    FaultPolicy, GraphError, IterativePE, Mapping, OutputSink, ProducerPE, RunInput, RunOptions,
    RunResult, WorkflowGraph, INPUT, OUTPUT,
};
use std::time::Duration;

const SEED: u64 = 0x5EED_C0FFEE;
const N: u64 = 60;

/// Src (0..n) → Worker (doubles; chaos-wrapped) → Out (logs one line per
/// surviving datum). One output line per datum that makes it through, so
/// `lines + dead_letters` partitions the input exactly.
fn chaos_graph(cfg: ChaosConfig) -> WorkflowGraph {
    let mut g = WorkflowGraph::new("chaos_wf");
    let src = g.add(ProducerPE::new("Src", |i| Some(Data::from(i as i64))));
    let worker = g.add(IterativePE::new("Worker", |d: Data| {
        let n = d.as_int()?;
        Some(Data::from(n * 2))
    }));
    let out = g.add(ConsumerPE::new("Out", |d: Data, ctx: &mut Context<'_>| {
        ctx.log(format!("out {d}"));
    }));
    g.connect(src, OUTPUT, worker, INPUT).expect("ports exist");
    g.connect(worker, OUTPUT, out, INPUT).expect("ports exist");
    inject_chaos(&mut g, worker, cfg);
    g
}

fn mappings() -> Vec<(&'static str, Mapping)> {
    vec![
        ("simple", Mapping::Simple),
        ("multi", Mapping::Multi { processes: 3 }),
        ("dynamic", Mapping::Dynamic(DynamicConfig::default())),
    ]
}

/// Permanent panics at `rate`: the canonical hard-failure plan.
fn permanent_panics(seed: u64, rate: f64) -> ChaosConfig {
    ChaosConfig {
        seed,
        panic_rate: rate,
        fail_attempts: 0,
        ..ChaosConfig::default()
    }
}

/// Rebuilds the graph each run so the chaos factory's transient-fault
/// ledger starts fresh — a run is a run, not a continuation.
fn run_chaos(
    cfg: &ChaosConfig,
    mapping: &Mapping,
    policy: FaultPolicy,
) -> Result<RunResult, GraphError> {
    let g = chaos_graph(cfg.clone());
    let options = RunOptions {
        fault_policy: policy,
        ..RunOptions::default()
    };
    run_with_options(&g, RunInput::Iterations(N), mapping, OutputSink::new(), &options)
}

/// FailFast under chaos must abort with the exact pre-fault-model error
/// surface — `GraphError::WorkerPanicked` — on every mapping, so callers
/// that matched on it before this layer existed keep working.
#[test]
fn fail_fast_under_chaos_keeps_the_pre_fault_error_surface() {
    let cfg = permanent_panics(SEED, 0.4);
    for (name, mapping) in mappings() {
        let err = run_chaos(&cfg, &mapping, FaultPolicy::FailFast)
            .expect_err("40% permanent panics must abort a fail-fast run");
        match err {
            GraphError::WorkerPanicked(msg) => assert!(
                msg.contains("chaos: injected"),
                "{name}: panic message lost: {msg}"
            ),
            other => panic!("{name}: expected WorkerPanicked, got {other:?}"),
        }
    }
}

/// Transient faults (each faulty datum fails exactly once) heal under
/// Retry: the full stream arrives and no datum is lost.
#[test]
fn retry_heals_transient_chaos_on_every_mapping() {
    let cfg = ChaosConfig {
        seed: SEED,
        panic_rate: 0.4,
        fail_attempts: 1,
        ..ChaosConfig::default()
    };
    for (name, mapping) in mappings() {
        let res = run_chaos(
            &cfg,
            &mapping,
            FaultPolicy::Retry {
                max_attempts: 3,
                backoff: Duration::ZERO,
            },
        )
        .unwrap_or_else(|e| panic!("{name}: retry should have healed transient chaos: {e}"));
        assert_eq!(
            res.lines().len(),
            N as usize,
            "{name}: retry must recover the full stream"
        );
        assert!(res.dead_letters.is_empty(), "{name}: nothing should be dropped");
        assert!(
            res.fault_stats.retries > 0,
            "{name}: 40% chaos over {N} items must have triggered retries"
        );
        assert_eq!(
            res.fault_stats.faults, res.fault_stats.retries,
            "{name}: every transient fault heals on its first retry"
        );
    }
}

/// Permanent faults under DeadLetter: the stream keeps flowing, and every
/// input datum is accounted for — either one output line or one DLQ entry.
#[test]
fn dead_letter_keeps_the_stream_flowing_on_every_mapping() {
    let cfg = permanent_panics(SEED, 0.4);
    for (name, mapping) in mappings() {
        let res = run_chaos(&cfg, &mapping, FaultPolicy::DeadLetter { max_attempts: 2 })
            .unwrap_or_else(|e| panic!("{name}: dead-letter must not abort the run: {e}"));
        assert!(
            !res.dead_letters.is_empty(),
            "{name}: 40% permanent faults over {N} items must dead-letter some"
        );
        assert!(
            !res.lines().is_empty(),
            "{name}: surviving datums must still flow"
        );
        assert_eq!(
            res.lines().len() + res.dead_letters.len(),
            N as usize,
            "{name}: every datum either completes or is dead-lettered"
        );
        assert_eq!(
            res.fault_stats.dead_letters,
            res.dead_letters.len() as u64,
            "{name}: stats must agree with the surfaced queue"
        );
        for d in &res.dead_letters {
            assert_eq!(d.pe, "Worker1", "{name}");
            assert_eq!(d.attempts, 2, "{name}: max_attempts made before giving up");
            assert!(d.error.contains("chaos: injected panic"), "{name}: {}", d.error);
            assert!(d.datum.is_some(), "{name}: the offending datum is preserved");
        }
    }
}

/// Per-PE iteration totals, rank-folded: which rank/worker handles a
/// datum legitimately varies run to run (dynamic work-stealing), but how
/// many invocations each PE performs must not.
fn pe_totals(res: &RunResult) -> std::collections::BTreeMap<String, u64> {
    let mut totals = std::collections::BTreeMap::new();
    for ((pe, _rank), n) in &res.counts {
        *totals.entry(pe.clone()).or_insert(0) += n;
    }
    totals
}

/// The soak assertion: five same-seed runs (panics *and* injected delays,
/// so scheduling genuinely jitters) produce bit-identical dead-letter
/// queues, fault counters, and per-PE iteration totals on every mapping.
#[test]
fn same_seed_soak_runs_produce_bit_identical_dead_letter_queues() {
    let cfg = ChaosConfig {
        seed: SEED,
        panic_rate: 0.3,
        delay_rate: 0.2,
        delay: Duration::from_micros(200),
        fail_attempts: 0,
        ..ChaosConfig::default()
    };
    for (name, mapping) in mappings() {
        let baseline = run_chaos(&cfg, &mapping, FaultPolicy::DeadLetter { max_attempts: 2 })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!baseline.dead_letters.is_empty(), "{name}: soak needs a non-trivial DLQ");
        for round in 1..5 {
            let res = run_chaos(&cfg, &mapping, FaultPolicy::DeadLetter { max_attempts: 2 })
                .unwrap_or_else(|e| panic!("{name} round {round}: {e}"));
            assert_eq!(
                res.dead_letters, baseline.dead_letters,
                "{name} round {round}: dead-letter queue must be bit-identical"
            );
            assert_eq!(
                res.fault_stats, baseline.fault_stats,
                "{name} round {round}: fault counters must be identical"
            );
            assert_eq!(
                pe_totals(&res),
                pe_totals(&baseline),
                "{name} round {round}: per-PE iteration totals must be identical"
            );
        }
    }
}

/// The bundled example workflow under chaos: inject panics into
/// `isprime_wf`'s IsPrime node (index 1 — NumberProducer is 0) and check
/// the surviving output is exactly the fault-free output minus the
/// dead-lettered datums, on every mapping.
#[test]
fn bundled_isprime_workflow_survives_chaos_on_every_mapping() {
    use d4py::NodeId;
    let clean = run_with_options(
        &d4py::workflows::isprime_graph(),
        RunInput::Iterations(N),
        &Mapping::Simple,
        OutputSink::new(),
        &RunOptions::default(),
    )
    .expect("fault-free run");
    for (name, mapping) in mappings() {
        let mut g = d4py::workflows::isprime_graph();
        inject_chaos(&mut g, NodeId(1), permanent_panics(SEED, 0.3));
        let res = run_with_options(
            &g,
            RunInput::Iterations(N),
            &mapping,
            OutputSink::new(),
            &RunOptions {
                fault_policy: FaultPolicy::DeadLetter { max_attempts: 1 },
                ..RunOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!res.dead_letters.is_empty(), "{name}: chaos must bite");
        assert!(res.dead_letters.iter().all(|d| d.pe == "IsPrime1"), "{name}");
        // Every surviving line is one the clean run also produced, and
        // fewer datums reached the printer than in the clean run.
        let mut clean_lines = clean.lines().to_vec();
        clean_lines.sort();
        let mut survivors = res.lines().to_vec();
        survivors.sort();
        assert!(
            survivors.iter().all(|l| clean_lines.binary_search(l).is_ok()),
            "{name}: chaos must not fabricate output"
        );
        // Exact accounting: each dead-lettered *prime* datum is one line
        // the clean run printed and this run did not (composites were
        // filtered out either way).
        let dead_primes = res
            .dead_letters
            .iter()
            .filter(|d| {
                d.datum
                    .as_ref()
                    .and_then(|x| x.as_int())
                    .map(d4py::workflows::is_prime)
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(
            survivors.len() + dead_primes,
            clean_lines.len(),
            "{name}: survivors + dead-lettered primes must equal the clean output"
        );
    }
}

/// Faults are keyed by datum content, not by rank or worker, so the three
/// mappings must surface the *same* dead-letter queue for the same seed.
#[test]
fn injected_fate_is_independent_of_the_mapping() {
    let cfg = permanent_panics(SEED, 0.4);
    let queues: Vec<(&'static str, Vec<d4py::DeadLetterEntry>)> = mappings()
        .into_iter()
        .map(|(name, mapping)| {
            let res = run_chaos(&cfg, &mapping, FaultPolicy::DeadLetter { max_attempts: 2 })
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, res.dead_letters)
        })
        .collect();
    let (base_name, base) = &queues[0];
    for (name, q) in &queues[1..] {
        assert_eq!(q, base, "{name} vs {base_name}: DLQ must not depend on the mapping");
    }
}

/// Sanity check on the other half of determinism: a different seed must
/// change the injected fates (otherwise the seed is decorative).
#[test]
fn different_seed_changes_the_injected_fate() {
    let a = run_chaos(
        &permanent_panics(SEED, 0.4),
        &Mapping::Simple,
        FaultPolicy::DeadLetter { max_attempts: 1 },
    )
    .expect("dead-letter run");
    let b = run_chaos(
        &permanent_panics(SEED ^ 0xDEAD_BEEF, 0.4),
        &Mapping::Simple,
        FaultPolicy::DeadLetter { max_attempts: 1 },
    )
    .expect("dead-letter run");
    assert_ne!(
        a.dead_letters, b.dead_letters,
        "two seeds, same fates — the injector is ignoring its seed"
    );
}
