//! Simplified Parse Tree construction.
//!
//! An SPT keeps the hierarchical structure of the parse tree but abstracts
//! non-essential detail (paper §II-E): single-child chains are collapsed,
//! and each internal node carries a *label* built from its direct children —
//! keywords and operators appear verbatim, everything else becomes a `__`
//! placeholder. `if x < 2 : return x` thus labels as `if __ : __` at the
//! statement level, which is what makes structurally-similar code align
//! regardless of the identifiers and literals involved.

use crate::features::{extract_features, Feature};
use crate::locals::local_variables;
use crate::vector::FeatureVec;
use pyparse::{NodeId, NodeKind, ParseTree, SyntaxKind, TokKind, Token};
use std::collections::HashSet;

/// Index of a node in the [`Spt`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SptNodeId(pub u32);

impl SptNodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One SPT node: either a leaf token or an internal node with a label.
#[derive(Debug, Clone)]
pub enum SptNode {
    /// Leaf: original token text, its kind, and whether it is a detected
    /// local variable (globalised to `#VAR` during featurisation).
    Leaf {
        text: String,
        kind: TokKind,
        is_variable: bool,
    },
    /// Internal node with its simplified label and children.
    Internal {
        label: String,
        kind: SyntaxKind,
        children: Vec<SptNodeId>,
    },
}

/// A Simplified Parse Tree.
#[derive(Debug, Clone, Default)]
pub struct Spt {
    pub nodes: Vec<SptNode>,
    pub root: Option<SptNodeId>,
    /// Local variable names detected in the source (already applied to the
    /// `is_variable` flags; kept for inspection and tests).
    pub variables: HashSet<String>,
    /// Parse diagnostics carried over from the underlying parse.
    pub parse_errors: usize,
}

impl Spt {
    /// Parse `src` and build its SPT. Never fails; a malformed snippet
    /// yields the SPT of whatever could be parsed (`parse_errors` counts
    /// the diagnostics).
    pub fn parse_source(src: &str) -> Spt {
        let tree = pyparse::parse(src);
        Spt::from_parse_tree(&tree)
    }

    /// Build the SPT of an already-parsed tree.
    pub fn from_parse_tree(tree: &ParseTree) -> Spt {
        let variables = local_variables(tree);
        let mut spt = Spt {
            nodes: Vec::new(),
            root: None,
            variables,
            parse_errors: tree.errors.len(),
        };
        if let Some(root) = tree.root {
            let id = spt.build(tree, root);
            spt.root = id;
        }
        spt
    }

    /// Build the SPT of a single subtree (e.g. one `FuncDef`) of a larger
    /// parse tree. Variable detection still uses the whole tree's scope
    /// information.
    pub fn from_subtree(tree: &ParseTree, node: NodeId) -> Spt {
        let variables = local_variables(tree);
        let mut spt = Spt {
            nodes: Vec::new(),
            root: None,
            variables,
            parse_errors: tree.errors.len(),
        };
        spt.root = spt.build(tree, node);
        spt
    }

    fn push(&mut self, node: SptNode) -> SptNodeId {
        let id = SptNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    fn build(&mut self, tree: &ParseTree, id: NodeId) -> Option<SptNodeId> {
        match &tree.node(id).kind {
            NodeKind::Leaf(tok) => self.build_leaf(tok),
            NodeKind::Internal(kind) => {
                let mut children = Vec::new();
                for &c in &tree.node(id).children {
                    if let Some(sc) = self.build(tree, c) {
                        children.push(sc);
                    }
                }
                match children.len() {
                    0 => None,
                    // Collapse single-child chains: the SPT abstracts away
                    // trivial unary productions.
                    1 => Some(children[0]),
                    _ => {
                        let label = self.label_of(&children);
                        Some(self.push(SptNode::Internal {
                            label,
                            kind: *kind,
                            children,
                        }))
                    }
                }
            }
        }
    }

    fn build_leaf(&mut self, tok: &Token) -> Option<SptNodeId> {
        if tok.kind.is_synthetic() {
            return None;
        }
        let is_variable = tok.kind == TokKind::Name && self.variables.contains(&tok.text);
        Some(self.push(SptNode::Leaf {
            text: tok.text.clone(),
            kind: tok.kind,
            is_variable,
        }))
    }

    /// Label = direct children rendered: keywords/operators verbatim,
    /// everything else `__`.
    fn label_of(&self, children: &[SptNodeId]) -> String {
        let mut s = String::new();
        for &c in children {
            if !s.is_empty() {
                s.push(' ');
            }
            match &self.nodes[c.index()] {
                SptNode::Leaf {
                    text,
                    kind: TokKind::Keyword | TokKind::Op,
                    ..
                } => s.push_str(text),
                _ => s.push_str("__"),
            }
        }
        s
    }

    /// Label of an internal node ("" for leaves).
    pub fn label(&self, id: SptNodeId) -> &str {
        match &self.nodes[id.index()] {
            SptNode::Internal { label, .. } => label,
            SptNode::Leaf { .. } => "",
        }
    }

    pub fn children(&self, id: SptNodeId) -> &[SptNodeId] {
        match &self.nodes[id.index()] {
            SptNode::Internal { children, .. } => children,
            SptNode::Leaf { .. } => &[],
        }
    }

    pub fn is_leaf(&self, id: SptNodeId) -> bool {
        matches!(self.nodes[id.index()], SptNode::Leaf { .. })
    }

    /// Leaf ids in source order under `id`.
    pub fn leaves_under(&self, id: SptNodeId) -> Vec<SptNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            match &self.nodes[n.index()] {
                SptNode::Leaf { .. } => out.push(n),
                SptNode::Internal { children, .. } => {
                    for &c in children.iter().rev() {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }

    /// Number of nodes in the whole SPT.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Extract the Aroma features of the whole tree.
    pub fn features(&self) -> Vec<Feature> {
        extract_features(self)
    }

    /// Hash the features into a sparse vector — the `sptEmbedding` the
    /// registry stores (paper §VI).
    pub fn feature_vec(&self) -> FeatureVec {
        FeatureVec::from_features(&self.features())
    }

    /// Feature vector of the subtree rooted at `id` only (used by
    /// prune-and-rerank, which scores statement subtrees independently).
    pub fn subtree_feature_vec(&self, id: SptNodeId) -> FeatureVec {
        let sub = self.subtree_view(id);
        FeatureVec::from_features(&extract_features(&sub))
    }

    /// Materialise the subtree rooted at `id` as its own `Spt` (cheap:
    /// clones only the relevant arena slots).
    pub fn subtree_view(&self, id: SptNodeId) -> Spt {
        let mut sub = Spt {
            nodes: Vec::new(),
            root: None,
            variables: self.variables.clone(),
            parse_errors: 0,
        };
        sub.root = Some(Self::copy_into(self, id, &mut sub));
        sub
    }

    fn copy_into(src: &Spt, id: SptNodeId, dst: &mut Spt) -> SptNodeId {
        match &src.nodes[id.index()] {
            SptNode::Leaf { text, kind, is_variable } => dst.push(SptNode::Leaf {
                text: text.clone(),
                kind: *kind,
                is_variable: *is_variable,
            }),
            SptNode::Internal { label, kind, children } => {
                let new_children: Vec<SptNodeId> = children
                    .iter()
                    .map(|&c| Self::copy_into(src, c, dst))
                    .collect();
                dst.push(SptNode::Internal {
                    label: label.clone(),
                    kind: *kind,
                    children: new_children,
                })
            }
        }
    }

    /// Pretty-print (indented labels + tokens), for debugging and tests.
    pub fn dump(&self) -> String {
        fn go(spt: &Spt, id: SptNodeId, depth: usize, out: &mut String) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            match &spt.nodes[id.index()] {
                SptNode::Leaf { text, is_variable, .. } => {
                    if *is_variable {
                        out.push_str(&format!("#VAR({text})\n"));
                    } else {
                        out.push_str(text);
                        out.push('\n');
                    }
                }
                SptNode::Internal { label, children, .. } => {
                    out.push_str(&format!("[{label}]\n"));
                    for &c in children {
                        go(spt, c, depth + 1, out);
                    }
                }
            }
        }
        let mut s = String::new();
        if let Some(r) = self.root {
            go(self, r, 0, &mut s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_source() {
        let spt = Spt::parse_source("");
        assert!(spt.root.is_none());
        assert_eq!(spt.size(), 0);
        assert_eq!(spt.feature_vec().len(), 0);
    }

    #[test]
    fn if_statement_label() {
        let spt = Spt::parse_source("if x < 2:\n    return x\n");
        let dump = spt.dump();
        assert!(dump.contains("[if __ : __]"), "{dump}");
    }

    #[test]
    fn single_child_chains_collapse() {
        // `x` alone would be Module -> ExprStmt -> leaf; the SPT must be
        // just the leaf.
        let spt = Spt::parse_source("x\n");
        assert_eq!(spt.size(), 1);
        assert!(spt.is_leaf(spt.root.unwrap()));
    }

    #[test]
    fn variables_are_flagged() {
        let spt = Spt::parse_source("def f(a, b):\n    c = a + b\n    return c\n");
        assert!(spt.variables.contains("a"));
        assert!(spt.variables.contains("b"));
        assert!(spt.variables.contains("c"));
        assert!(!spt.variables.contains("f"), "function name is not a variable");
        let dump = spt.dump();
        assert!(dump.contains("#VAR(a)"), "{dump}");
    }

    #[test]
    fn builtins_and_attributes_not_variables() {
        let spt = Spt::parse_source("def f(x):\n    return len(x.items)\n");
        assert!(!spt.variables.contains("len"));
        assert!(!spt.variables.contains("items"));
        assert!(spt.variables.contains("x"));
    }

    #[test]
    fn structure_insensitive_to_renaming() {
        // The paper's core claim: structurally identical code with renamed
        // variables produces (nearly) identical SPT features.
        let a = Spt::parse_source("def f(a):\n    if a > 0:\n        return a * 2\n");
        let b = Spt::parse_source("def f(qq):\n    if qq > 0:\n        return qq * 2\n");
        let sim = a.feature_vec().cosine(&b.feature_vec());
        assert!(sim > 0.95, "rename similarity {sim}");
    }

    #[test]
    fn different_structure_scores_lower() {
        let a = Spt::parse_source("def f(a):\n    if a > 0:\n        return a * 2\n");
        let c = Spt::parse_source("def g(s):\n    with open(s) as fh:\n        return fh.read()\n");
        let ab = a.feature_vec().cosine(&a.feature_vec());
        let ac = a.feature_vec().cosine(&c.feature_vec());
        assert!(ac < ab);
        assert!(ac < 0.6, "unrelated code similarity {ac}");
    }

    #[test]
    fn partial_snippet_shares_features_with_full() {
        let full = "def process(self, data):\n    total = 0\n    for item in data:\n        total += item\n    return total\n";
        let half = pyparse::drop_suffix_fraction(full, 0.5);
        let f = Spt::parse_source(full).feature_vec();
        let h = Spt::parse_source(&half).feature_vec();
        let sim = f.cosine(&h);
        assert!(sim > 0.4, "prefix similarity {sim}");
    }

    #[test]
    fn subtree_view_matches_direct_parse() {
        let spt = Spt::parse_source("def f(x):\n    return x\n\ndef g(y):\n    return y\n");
        let root = spt.root.unwrap();
        let first_fn = spt.children(root)[0];
        let sub = spt.subtree_view(first_fn);
        assert!(sub.root.is_some());
        assert!(sub.size() < spt.size());
        assert!(sub.dump().contains("#VAR(x)"));
    }

    #[test]
    fn leaves_in_source_order() {
        let spt = Spt::parse_source("a = b + c\n");
        let leaves = spt.leaves_under(spt.root.unwrap());
        let texts: Vec<_> = leaves
            .iter()
            .map(|&l| match &spt.nodes[l.index()] {
                SptNode::Leaf { text, .. } => text.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(texts, vec!["a", "=", "b", "+", "c"]);
    }

    #[test]
    fn parse_errors_counted() {
        let spt = Spt::parse_source("def f(:\n");
        assert!(spt.parse_errors > 0);
    }
}
