//! Sparse feature vectors.
//!
//! Features are hashed with 64-bit FNV-1a into a sorted sparse vector of
//! `(feature-id, count)` pairs. Dot products and cosine similarity are
//! linear merges over the sorted id lists — this is the "matrix
//! multiplication for quick snippet identification" step of the Aroma
//! pipeline (paper Fig. 3) in row form.
//!
//! The JSON encoding (`to_json` / `from_json`) matches what the registry
//! stores in its `sptEmbedding` CLOB column (paper §VI, Fig. 6).

use crate::features::Feature;
use serde::{Deserialize, Serialize};

/// Sorted sparse vector over the hashed feature space.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FeatureVec {
    /// `(feature id, count)` sorted ascending by id, ids unique.
    pub items: Vec<(u64, f32)>,
}

/// 64-bit FNV-1a over the feature's stable encoding.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl FeatureVec {
    /// Build from a feature multiset.
    pub fn from_features(features: &[Feature]) -> FeatureVec {
        let mut ids: Vec<u64> = features
            .iter()
            .map(|f| fnv1a(f.encode().as_bytes()))
            .collect();
        ids.sort_unstable();
        let mut items: Vec<(u64, f32)> = Vec::with_capacity(ids.len());
        for id in ids {
            match items.last_mut() {
                Some(last) if last.0 == id => last.1 += 1.0,
                _ => items.push((id, 1.0)),
            }
        }
        FeatureVec { items }
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total feature count (multiset cardinality).
    pub fn total(&self) -> f32 {
        self.items.iter().map(|&(_, c)| c).sum()
    }

    /// Sparse dot product (sorted merge).
    pub fn dot(&self, other: &FeatureVec) -> f32 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f32;
        while i < self.items.len() && j < other.items.len() {
            let (a, ca) = self.items[i];
            let (b, cb) = other.items[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += ca * cb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Multiset intersection size: Σ min(count_a, count_b). This is Aroma's
    /// overlap score — the score the paper's default 6.0 threshold applies
    /// to (§VI-A).
    pub fn overlap(&self, other: &FeatureVec) -> f32 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f32;
        while i < self.items.len() && j < other.items.len() {
            let (a, ca) = self.items[i];
            let (b, cb) = other.items[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += ca.min(cb);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.items
            .iter()
            .map(|&(_, c)| c * c)
            .sum::<f32>()
            .sqrt()
    }

    /// Cosine similarity in [0, 1] (counts are non-negative). Zero when
    /// either vector is empty.
    pub fn cosine(&self, other: &FeatureVec) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        self.dot(other) / denom
    }

    /// Containment of `self` in `other`: |self ∩ other| / |self|. Used by
    /// prune-and-rerank (how much of the query does this snippet cover?).
    pub fn containment_in(&self, other: &FeatureVec) -> f32 {
        let t = self.total();
        if t == 0.0 {
            return 0.0;
        }
        self.overlap(other) / t
    }

    /// Serialise to the registry's JSON embedding format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.items).expect("FeatureVec serialisation cannot fail")
    }

    /// Parse the registry's JSON embedding format.
    pub fn from_json(s: &str) -> Result<FeatureVec, serde_json::Error> {
        let mut items: Vec<(u64, f32)> = serde_json::from_str(s)?;
        items.sort_unstable_by_key(|&(id, _)| id);
        items.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        Ok(FeatureVec { items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Feature;

    fn fv(tokens: &[&str]) -> FeatureVec {
        let fs: Vec<Feature> = tokens.iter().map(|t| Feature::Token((*t).into())).collect();
        FeatureVec::from_features(&fs)
    }

    #[test]
    fn counts_accumulate() {
        let v = fv(&["a", "b", "a", "a"]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.total(), 4.0);
    }

    #[test]
    fn ids_sorted_unique() {
        let v = fv(&["z", "a", "m", "a"]);
        let ids: Vec<u64> = v.items.iter().map(|&(id, _)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn dot_and_overlap() {
        let a = fv(&["x", "x", "y"]);
        let b = fv(&["x", "y", "y", "z"]);
        assert_eq!(a.dot(&b), 2.0 * 1.0 + 1.0 * 2.0);
        assert_eq!(a.overlap(&b), 1.0 + 1.0 + 0.0 + 1.0 - 1.0); // min(2,1)+min(1,2)=2
        assert_eq!(a.overlap(&b), 2.0);
    }

    #[test]
    fn cosine_bounds_and_identity() {
        let a = fv(&["x", "y", "z"]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
        let b = fv(&["p", "q"]);
        assert_eq!(a.cosine(&b), 0.0);
        let c = fv(&["x", "q"]);
        let s = a.cosine(&c);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn empty_vector_behaviour() {
        let e = FeatureVec::default();
        let a = fv(&["x"]);
        assert_eq!(e.cosine(&a), 0.0);
        assert_eq!(e.dot(&a), 0.0);
        assert_eq!(e.containment_in(&a), 0.0);
        assert!(e.is_empty());
    }

    #[test]
    fn containment_asymmetry() {
        let small = fv(&["x", "y"]);
        let big = fv(&["x", "y", "z", "w"]);
        assert!((small.containment_in(&big) - 1.0).abs() < 1e-6);
        assert!((big.containment_in(&small) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn json_roundtrip() {
        let v = fv(&["alpha", "beta", "alpha"]);
        let json = v.to_json();
        let back = FeatureVec::from_json(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn from_json_normalises_unsorted_duplicates() {
        let s = "[[5, 1.0], [3, 2.0], [5, 2.0]]";
        let v = FeatureVec::from_json(s).unwrap();
        assert_eq!(v.items, vec![(3, 2.0), (5, 3.0)]);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(FeatureVec::from_json("not json").is_err());
        assert!(FeatureVec::from_json("{\"a\": 1}").is_err());
    }

    #[test]
    fn fnv_known_values_and_dispersion() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        // Nearby inputs hash far apart.
        assert_ne!(fnv1a(b"T:a"), fnv1a(b"T:b"));
        assert_ne!(fnv1a(b"T:a"), fnv1a(b"S:a"));
    }

    #[test]
    fn dot_is_symmetric() {
        let a = fv(&["x", "y", "y"]);
        let b = fv(&["y", "z"]);
        assert_eq!(a.dot(&b), b.dot(&a));
        assert_eq!(a.overlap(&b), b.overlap(&a));
    }
}
