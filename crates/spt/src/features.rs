//! Aroma feature extraction (Luan et al. 2019, §3.2) over an [`Spt`].
//!
//! Four feature families are produced for every *eligible* leaf token —
//! keywords, (globalised) names, and literals; bare punctuation contributes
//! to node labels but not to features:
//!
//! 1. `Token(t)` — the token itself, with local variables globalised to
//!    `#VAR` and long string literals normalised to `#STR`;
//! 2. `Parent(t, i, label)` — for up to three enclosing SPT internal nodes:
//!    the token, the child index of the path at that ancestor, and the
//!    ancestor's simplified label;
//! 3. `Sibling(t, u)` — ordered bigrams of consecutive eligible tokens;
//! 4. `VarUsage(c1, c2)` — for each local variable, the labels of the
//!    parent contexts of consecutive usages (variable-agnostic, so `i`
//!    in one snippet matches `idx` in another).

use crate::tree::{Spt, SptNode, SptNodeId};
use pyparse::TokKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One extracted structural feature.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Feature {
    Token(String),
    Parent(String, u8, String),
    Sibling(String, String),
    VarUsage(String, String),
}

impl Feature {
    /// Stable textual encoding (the hashing key).
    pub fn encode(&self) -> String {
        match self {
            Feature::Token(t) => format!("T:{t}"),
            Feature::Parent(t, i, l) => format!("P:{t}|{i}|{l}"),
            Feature::Sibling(a, b) => format!("S:{a}|{b}"),
            Feature::VarUsage(a, b) => format!("V:{a}|{b}"),
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Maximum ancestor depth for parent features (Aroma uses 3).
const PARENT_LEVELS: usize = 3;
/// String literals longer than this are normalised to `#STR`.
const MAX_LITERAL_LEN: usize = 12;

/// Reusable extractor (kept for API symmetry with the paper's pipeline
/// stages; extraction itself is stateless).
#[derive(Debug, Default, Clone, Copy)]
pub struct FeatureExtractor;

impl FeatureExtractor {
    pub fn new() -> Self {
        FeatureExtractor
    }

    pub fn extract(&self, spt: &Spt) -> Vec<Feature> {
        extract_features(spt)
    }
}

/// Extract all features of `spt`.
pub fn extract_features(spt: &Spt) -> Vec<Feature> {
    let Some(root) = spt.root else {
        return Vec::new();
    };
    let mut out = Vec::new();

    // Build parent & child-index maps with one walk.
    let mut parent: HashMap<u32, (SptNodeId, u8)> = HashMap::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if let SptNode::Internal { children, .. } = &spt.nodes[id.index()] {
            for (i, &c) in children.iter().enumerate() {
                parent.insert(c.0, (id, (i as u8)));
                stack.push(c);
            }
        }
    }

    let leaves = spt.leaves_under(root);

    // Token + parent features; remember eligible tokens and variable uses.
    let mut eligible: Vec<(SptNodeId, String)> = Vec::new();
    let mut var_uses: HashMap<String, Vec<String>> = HashMap::new();
    for &leaf in &leaves {
        let SptNode::Leaf { text, kind, is_variable } = &spt.nodes[leaf.index()] else {
            continue;
        };
        let token = match kind {
            TokKind::Keyword => text.clone(),
            TokKind::Name => {
                if *is_variable {
                    "#VAR".to_string()
                } else {
                    text.clone()
                }
            }
            TokKind::Number => text.clone(),
            TokKind::Str => {
                if text.len() > MAX_LITERAL_LEN {
                    "#STR".to_string()
                } else {
                    text.clone()
                }
            }
            TokKind::Op | TokKind::Newline | TokKind::Indent | TokKind::Dedent | TokKind::Eof => {
                continue;
            }
        };
        out.push(Feature::Token(token.clone()));

        // Parent features: climb up to PARENT_LEVELS ancestors.
        let mut cur = leaf;
        for _ in 0..PARENT_LEVELS {
            let Some(&(p, idx)) = parent.get(&cur.0) else {
                break;
            };
            let label = spt.label(p).to_string();
            out.push(Feature::Parent(token.clone(), idx, label));
            cur = p;
        }

        if *is_variable {
            let ctx = parent
                .get(&leaf.0)
                .map(|&(p, _)| spt.label(p).to_string())
                .unwrap_or_default();
            var_uses.entry(text.clone()).or_default().push(ctx);
        }
        eligible.push((leaf, token));
    }

    // Sibling features: ordered bigrams of consecutive eligible tokens.
    for pair in eligible.windows(2) {
        out.push(Feature::Sibling(pair[0].1.clone(), pair[1].1.clone()));
    }

    // Variable-usage features: consecutive usage contexts per variable.
    // Sort variables so output order is deterministic.
    let mut vars: Vec<_> = var_uses.into_iter().collect();
    vars.sort_by(|a, b| a.0.cmp(&b.0));
    for (_name, contexts) in vars {
        for pair in contexts.windows(2) {
            out.push(Feature::VarUsage(pair[0].clone(), pair[1].clone()));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Spt;

    fn feats(src: &str) -> Vec<Feature> {
        extract_features(&Spt::parse_source(src))
    }

    fn count<F: Fn(&Feature) -> bool>(fs: &[Feature], pred: F) -> usize {
        fs.iter().filter(|f| pred(f)).count()
    }

    #[test]
    fn empty_has_no_features() {
        assert!(feats("").is_empty());
    }

    #[test]
    fn token_features_globalise_variables() {
        let fs = feats("def f(x):\n    return x + 1\n");
        assert!(fs.contains(&Feature::Token("#VAR".into())));
        assert!(fs.contains(&Feature::Token("def".into())));
        assert!(fs.contains(&Feature::Token("return".into())));
        assert!(fs.contains(&Feature::Token("1".into())));
        // `x` must not appear verbatim.
        assert!(!fs.contains(&Feature::Token("x".into())));
    }

    #[test]
    fn api_names_survive() {
        let fs = feats("def f(x):\n    return range(x)\n");
        assert!(fs.contains(&Feature::Token("range".into())));
    }

    #[test]
    fn parent_features_reference_labels() {
        let fs = feats("if x < 2:\n    return x\n");
        let has_if_label = fs.iter().any(|f| match f {
            Feature::Parent(_, _, l) => l.contains("if") && l.contains(':'),
            _ => false,
        });
        assert!(has_if_label, "{fs:?}");
    }

    #[test]
    fn parent_features_at_most_three_levels() {
        let fs = feats("def f(a):\n    if a:\n        while a:\n            for i in a:\n                g(i)\n");
        // Every eligible token contributes at most PARENT_LEVELS parent features.
        let tokens = count(&fs, |f| matches!(f, Feature::Token(_)));
        let parents = count(&fs, |f| matches!(f, Feature::Parent(..)));
        assert!(parents <= tokens * 3);
        assert!(parents > 0);
    }

    #[test]
    fn sibling_features_are_ordered_bigrams() {
        let fs = feats("a = 1\n");
        // a(#VAR) then 1: bigram (#VAR, 1). '=' is punctuation → skipped.
        assert!(fs.contains(&Feature::Sibling("#VAR".into(), "1".into())), "{fs:?}");
        assert!(!fs.contains(&Feature::Sibling("1".into(), "#VAR".into())));
    }

    #[test]
    fn var_usage_features_link_consecutive_contexts() {
        let fs = feats("def f(n):\n    if n > 0:\n        return n\n");
        let vu = count(&fs, |f| matches!(f, Feature::VarUsage(..)));
        // n used 3 times (param, condition, return) → 2 consecutive pairs.
        assert_eq!(vu, 2, "{fs:?}");
    }

    #[test]
    fn long_strings_normalised() {
        let fs = feats("s = 'a very long string literal indeed'\nt = 'ok'\n");
        assert!(fs.contains(&Feature::Token("#STR".into())));
        assert!(fs.contains(&Feature::Token("'ok'".into())));
    }

    #[test]
    fn rename_invariance_of_feature_multiset() {
        use std::collections::HashMap;
        let to_counts = |fs: Vec<Feature>| {
            let mut m: HashMap<String, usize> = HashMap::new();
            for f in fs {
                *m.entry(f.encode()).or_default() += 1;
            }
            m
        };
        let a = to_counts(feats("def f(count):\n    count += 1\n    return count\n"));
        let b = to_counts(feats("def f(total):\n    total += 1\n    return total\n"));
        assert_eq!(a, b, "pure renaming must not change the feature multiset");
    }

    #[test]
    fn encoding_is_injective_across_kinds() {
        let t = Feature::Token("x|1|y".into());
        let p = Feature::Parent("x".into(), 1, "y".into());
        assert_ne!(t.encode(), p.encode());
        let s = Feature::Sibling("a".into(), "b".into());
        let v = Feature::VarUsage("a".into(), "b".into());
        assert_ne!(s.encode(), v.encode());
    }

    #[test]
    fn extractor_api() {
        let spt = Spt::parse_source("x = 1\n");
        let fx = FeatureExtractor::new();
        assert_eq!(fx.extract(&spt), extract_features(&spt));
    }
}
