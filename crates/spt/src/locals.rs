//! Local-variable detection.
//!
//! Aroma globalises variable names (`#VAR`) so that structural similarity is
//! insensitive to renaming, while *keeping* names that refer to external
//! API — called functions, attributes, imported modules — because those are
//! genuinely discriminative. For Python we classify a `Name` leaf as a
//! variable when it is **bound** somewhere in the snippet:
//!
//! * function/lambda parameters,
//! * assignment / augmented / annotated assignment targets,
//! * `for` and comprehension targets,
//! * `with … as` / `except … as` names,
//! * `global` / `nonlocal` declarations,
//! * `import … as` aliases.
//!
//! Names that only ever appear in call/attribute positions (e.g. `range`,
//! `len`, `self.queue` → `queue`) stay verbatim.

use pyparse::{NodeId, ParseTree, SyntaxKind, TokKind};
use std::collections::HashSet;

/// Collect the set of locally-bound variable names in `tree`.
pub fn local_variables(tree: &ParseTree) -> HashSet<String> {
    let mut vars = HashSet::new();
    let Some(root) = tree.root else {
        return vars;
    };
    collect(tree, root, &mut vars);
    vars
}

fn collect(tree: &ParseTree, id: NodeId, vars: &mut HashSet<String>) {
    if let Some(kind) = tree.kind(id) {
        match kind {
            SyntaxKind::Param => {
                // First Name leaf of a Param is the parameter name.
                if let Some(name) = first_name_leaf(tree, id) {
                    vars.insert(name);
                }
            }
            SyntaxKind::Assign | SyntaxKind::AugAssign | SyntaxKind::AnnAssign => {
                // Targets = every child subtree before the first `=`/`:`
                // leaf; simple names in them are bindings.
                let children = &tree.node(id).children;
                for &c in children {
                    if let Some(tok) = tree.leaf(c) {
                        if tok.is_op("=") || tok.is_op(":") || tok.kind == TokKind::Op {
                            break;
                        }
                        if tok.kind == TokKind::Name {
                            vars.insert(tok.text.clone());
                        }
                    } else {
                        collect_target_names(tree, c, vars);
                        break; // only the first (target) subtree
                    }
                }
            }
            SyntaxKind::ForStmt | SyntaxKind::CompFor => {
                // Target subtree sits between `for` and `in`.
                let mut in_target = false;
                for &c in &tree.node(id).children {
                    if let Some(tok) = tree.leaf(c) {
                        if tok.is_kw("for") {
                            in_target = true;
                            continue;
                        }
                        if tok.is_kw("in") {
                            break;
                        }
                        if in_target && tok.kind == TokKind::Name {
                            vars.insert(tok.text.clone());
                        }
                    } else if in_target {
                        collect_target_names(tree, c, vars);
                    }
                }
            }
            SyntaxKind::WithItem | SyntaxKind::ExceptClause => {
                // Anything after `as`.
                let mut after_as = false;
                for &c in &tree.node(id).children {
                    if let Some(tok) = tree.leaf(c) {
                        if tok.is_kw("as") {
                            after_as = true;
                            continue;
                        }
                        if after_as && tok.kind == TokKind::Name {
                            vars.insert(tok.text.clone());
                        }
                    } else if after_as {
                        collect_target_names(tree, c, vars);
                    }
                }
            }
            SyntaxKind::GlobalStmt | SyntaxKind::NonlocalStmt => {
                for &c in &tree.node(id).children {
                    if let Some(tok) = tree.leaf(c) {
                        if tok.kind == TokKind::Name {
                            vars.insert(tok.text.clone());
                        }
                    }
                }
            }
            SyntaxKind::ImportAlias => {
                // `import numpy as np` binds `np`; bare `import os` binds `os`.
                let names: Vec<&str> = tree
                    .node(id)
                    .children
                    .iter()
                    .filter_map(|&c| tree.leaf(c))
                    .filter(|t| t.kind == TokKind::Name)
                    .map(|t| t.text.as_str())
                    .collect();
                if let Some(last) = names.last() {
                    vars.insert((*last).to_string());
                }
            }
            SyntaxKind::WalrusExpr => {
                if let Some(name) = first_name_leaf(tree, id) {
                    vars.insert(name);
                }
            }
            _ => {}
        }
    }
    for &c in &tree.node(id).children {
        collect(tree, c, vars);
    }
}

/// Names bound by a target subtree (tuple unpacking, starred, parens) —
/// simple names only; attribute/subscript targets do not bind new names.
fn collect_target_names(tree: &ParseTree, id: NodeId, vars: &mut HashSet<String>) {
    match tree.kind(id) {
        Some(SyntaxKind::TupleExpr) | Some(SyntaxKind::ListExpr) | Some(SyntaxKind::ParenExpr)
        | Some(SyntaxKind::Starred) | None => {
            if let Some(tok) = tree.leaf(id) {
                if tok.kind == TokKind::Name {
                    vars.insert(tok.text.clone());
                }
                return;
            }
            for &c in &tree.node(id).children {
                collect_target_names(tree, c, vars);
            }
        }
        // Attribute / Subscript targets (self.x = …) bind nothing new.
        _ => {}
    }
}

fn first_name_leaf(tree: &ParseTree, id: NodeId) -> Option<String> {
    for &c in &tree.node(id).children {
        if let Some(tok) = tree.leaf(c) {
            if tok.kind == TokKind::Name {
                return Some(tok.text.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyparse::parse;

    fn vars(src: &str) -> HashSet<String> {
        local_variables(&parse(src))
    }

    #[test]
    fn params_and_assignments() {
        let v = vars("def f(a, b=1, *args, **kw):\n    c = a\n    d += 1\n    e: int = 2\n");
        for name in ["a", "b", "args", "kw", "c", "d", "e"] {
            assert!(v.contains(name), "missing {name}: {v:?}");
        }
        assert!(!v.contains("f"));
        assert!(!v.contains("int"));
    }

    #[test]
    fn loop_and_comprehension_targets() {
        let v = vars("for i, (j, k) in pairs:\n    pass\nxs = [y for y in ys]\n");
        for name in ["i", "j", "k", "y", "xs"] {
            assert!(v.contains(name), "missing {name}: {v:?}");
        }
        assert!(!v.contains("pairs"));
        assert!(!v.contains("ys"));
    }

    #[test]
    fn with_except_walrus() {
        let v = vars("try:\n    with open(p) as fh:\n        pass\nexcept OSError as err:\n    pass\nif (n := get()) is None:\n    pass\n");
        for name in ["fh", "err", "n"] {
            assert!(v.contains(name), "missing {name}: {v:?}");
        }
        assert!(!v.contains("open"));
        assert!(!v.contains("OSError"));
        assert!(!v.contains("p"), "p is only read, never bound");
    }

    #[test]
    fn imports_bind_aliases() {
        let v = vars("import numpy as np\nimport os\nfrom collections import deque\n");
        assert!(v.contains("np"));
        assert!(v.contains("os"));
        assert!(v.contains("deque"));
        assert!(!v.contains("numpy"));
        assert!(!v.contains("collections"));
    }

    #[test]
    fn attribute_targets_bind_nothing() {
        let v = vars("self.count = 0\nobj.data[k] = v_\n");
        assert!(!v.contains("self"), "{v:?}");
        assert!(!v.contains("count"));
        assert!(!v.contains("data"));
    }

    #[test]
    fn globals_and_nonlocals() {
        let v = vars("def f():\n    global total\n    total = 1\n");
        assert!(v.contains("total"));
    }

    #[test]
    fn called_names_stay_api() {
        let v = vars("def f(x):\n    return sorted(filter(None, x))\n");
        assert!(!v.contains("sorted"));
        assert!(!v.contains("filter"));
        assert!(!v.contains("None"));
        assert!(v.contains("x"));
    }
}
