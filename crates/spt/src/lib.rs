//! `spt` — Simplified Parse Trees and Aroma-style structural features.
//!
//! Implements the representation half of the Aroma pipeline (paper §II-E,
//! Fig. 2): a [`ParseTree`](pyparse::ParseTree) is simplified into an
//! [`Spt`], local variables are detected and globalised to `#VAR`, and four
//! kinds of structural features are extracted:
//!
//! * **token features** — each eligible leaf token;
//! * **parent features** — `(token, child-index, ancestor-label)` for up to
//!   three enclosing SPT nodes;
//! * **sibling features** — ordered bigrams of eligible tokens;
//! * **variable-usage features** — consecutive usage contexts of each local
//!   variable.
//!
//! Features are hashed (FNV-1a, 64-bit) into a [`FeatureVec`] — a sorted
//! sparse vector supporting the dot-product / cosine scoring the search
//! layer needs, and JSON (de)serialisation matching the paper's
//! `sptEmbedding` registry column (§VI, Fig. 6).
//!
//! ```
//! let spt = spt::Spt::parse_source("def f(x):\n    return x + 1\n");
//! let vec = spt.feature_vec();
//! assert!(vec.len() > 0);
//! assert!((vec.cosine(&vec) - 1.0).abs() < 1e-6);
//! ```

pub mod features;
pub mod locals;
pub mod tree;
pub mod vector;

pub use features::{extract_features, Feature, FeatureExtractor};
pub use locals::local_variables;
pub use tree::{Spt, SptNode, SptNodeId};
pub use vector::FeatureVec;
