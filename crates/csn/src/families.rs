//! The semantic family catalogue.
//!
//! Families are grouped into overlapping topics on purpose: an embedder
//! that confuses "sum a list" with "average a list" behaves like a real
//! retrieval model on CodeSearchNet, which is what gives the Fig. 11 curve
//! its realistic (non-perfect) shape.
//!
//! Body templates use placeholders substituted at generation time:
//! `{P}` parameter, `{A}` accumulator, `{V}` loop variable, `{F}` file
//! handle, `{K}`/`{W}` key/aux variables.

/// One semantic family.
pub struct Family {
    /// Stable key; also the basis of generated class names.
    pub key: &'static str,
    /// Natural-language description paraphrases (queries + docstrings).
    pub descriptions: &'static [&'static str],
    /// `_process` body template (zero indent; `{…}` placeholders).
    pub body: &'static str,
}

/// The catalogue. Order is stable; the generator cycles through it.
pub fn family_catalogue() -> &'static [Family] {
    CATALOGUE
}

static CATALOGUE: &[Family] = &[
    // ---- list / math group (mutually confusable) -------------------------
    Family {
        key: "sum_list",
        descriptions: &[
            "sum all numbers in a list",
            "compute the sum of a sequence of values",
            "add every element up and return the sum of the list",
            "returns the sum of the given numbers",
        ],
        body: "{A} = 0\nfor {V} in {P}:\n    {A} += {V}\nreturn {A}\n",
    },
    Family {
        key: "average_list",
        descriptions: &[
            "compute the average of a list of numbers",
            "calculate the average or mean value of a sequence",
            "returns the average of the input values",
            "find the average of the given numbers",
        ],
        body: "{A} = 0\nfor {V} in {P}:\n    {A} += {V}\nreturn {A} / len({P})\n",
    },
    Family {
        key: "max_list",
        descriptions: &[
            "find the maximum number in a list",
            "returns the maximum element of a sequence",
            "get the maximum value from the input list",
            "select the maximum of the given numbers",
        ],
        body: "{A} = None\nfor {V} in {P}:\n    if {A} is None or {V} > {A}:\n        {A} = {V}\nreturn {A}\n",
    },
    Family {
        key: "min_list",
        descriptions: &[
            "find the minimum number in a list",
            "returns the minimum element of a sequence",
            "get the minimum value from the input list",
            "select the minimum of the given numbers",
        ],
        body: "{A} = None\nfor {V} in {P}:\n    if {A} is None or {V} < {A}:\n        {A} = {V}\nreturn {A}\n",
    },
    Family {
        key: "count_evens",
        descriptions: &[
            "count the even numbers in a list",
            "count how many elements of the sequence are even",
            "returns the count of even values in the input",
            "tally and count the even entries of the given list",
        ],
        body: "{A} = 0\nfor {V} in {P}:\n    if {V} % 2 == 0:\n        {A} += 1\nreturn {A}\n",
    },
    Family {
        key: "product_list",
        descriptions: &[
            "multiply all numbers in a list to get their product",
            "compute the product of a sequence of values",
            "returns the product of multiplying every element",
            "calculate the cumulative product of the input",
        ],
        body: "{A} = 1\nfor {V} in {P}:\n    {A} *= {V}\nreturn {A}\n",
    },
    Family {
        key: "filter_positive",
        descriptions: &[
            "keep only the positive numbers from a list",
            "filter the sequence to its positive values",
            "returns the positive elements greater than zero",
            "select the positive entries of the given list",
        ],
        body: "{A} = []\nfor {V} in {P}:\n    if {V} > 0:\n        {A}.append({V})\nreturn {A}\n",
    },
    // ---- string group -------------------------------------------------------
    Family {
        key: "reverse_string",
        descriptions: &[
            "reverse a string",
            "returns the characters of the text in reverse order",
            "produce the reversed version of the input string",
            "flip the given text into its reverse",
        ],
        body: "{A} = ''\nfor {V} in {P}:\n    {A} = {V} + {A}\nreturn {A}\n",
    },
    Family {
        key: "count_words",
        descriptions: &[
            "count the words in a text",
            "count how many words the input string contains",
            "returns the count of words separated by whitespace",
            "tally the word count of the given sentence",
        ],
        body: "{A} = {P}.split()\nreturn len({A})\n",
    },
    Family {
        key: "uppercase_words",
        descriptions: &[
            "convert every word of a text to uppercase",
            "uppercase all words in the input string",
            "returns the text with each word in uppercase letters",
            "rewrite the given sentence in uppercase capitals",
        ],
        body: "{A} = []\nfor {V} in {P}.split():\n    {A}.append({V}.upper())\nreturn ' '.join({A})\n",
    },
    Family {
        key: "is_palindrome",
        descriptions: &[
            "check whether a string is a palindrome",
            "test if the text is a palindrome reading the same both ways",
            "returns true when the input is palindromic",
            "decide if the given word is a palindrome",
        ],
        body: "{A} = ''\nfor {V} in {P}:\n    {A} = {V} + {A}\nreturn {A} == {P}\n",
    },
    Family {
        key: "longest_word",
        descriptions: &[
            "find the longest word in a sentence",
            "returns the longest word with the most characters",
            "get the longest token of the input text",
            "select the longest of the given words",
        ],
        body: "{A} = ''\nfor {V} in {P}.split():\n    if len({V}) > len({A}):\n        {A} = {V}\nreturn {A}\n",
    },
    // ---- file group -----------------------------------------------------------
    Family {
        key: "read_file",
        descriptions: &[
            "read the contents of a file",
            "open and read a file returning everything inside it",
            "returns the full text read from the given path",
            "read a document from disk into a string",
        ],
        body: "with open({P}) as {F}:\n    {A} = {F}.read()\nreturn {A}\n",
    },
    Family {
        key: "count_file_lines",
        descriptions: &[
            "count the lines in a file",
            "count how many lines the file at the given path contains",
            "returns the count of lines of a document",
            "tally the line count of the given file",
        ],
        body: "{A} = 0\nwith open({P}) as {F}:\n    for {V} in {F}:\n        {A} += 1\nreturn {A}\n",
    },
    Family {
        key: "write_file",
        descriptions: &[
            "write text to a file",
            "write the given content to a path on disk",
            "writes a string into a document file",
            "persist the input text by writing it to a file",
        ],
        body: "with open({P}, 'w') as {F}:\n    {F}.write({K})\nreturn True\n",
    },
    Family {
        key: "filter_file_lines",
        descriptions: &[
            "return the lines of a file containing a keyword",
            "grep a file for lines matching a keyword",
            "select the file lines that mention the given keyword",
            "find every line of a file with the keyword substring",
        ],
        body: "{A} = []\nwith open({P}) as {F}:\n    for {V} in {F}:\n        if {K} in {V}:\n            {A}.append({V})\nreturn {A}\n",
    },
    // ---- dict group -----------------------------------------------------------
    Family {
        key: "invert_dict",
        descriptions: &[
            "invert a dictionary swapping keys and values",
            "returns the inverted mapping from values back to keys",
            "invert the key value pairs of the input dict",
            "exchange keys with values inverting the given mapping",
        ],
        body: "{A} = {}\nfor {K}, {V} in {P}.items():\n    {A}[{V}] = {K}\nreturn {A}\n",
    },
    Family {
        key: "count_frequencies",
        descriptions: &[
            "count how often each element occurs in a list",
            "build a frequency table counting the input values",
            "returns a histogram mapping items to their frequency counts",
            "tally the frequency of every entry",
        ],
        body: "{A} = {}\nfor {V} in {P}:\n    {A}[{V}] = {A}.get({V}, 0) + 1\nreturn {A}\n",
    },
    Family {
        key: "merge_dicts",
        descriptions: &[
            "merge two dictionaries into one",
            "merge a pair of mappings with the second overriding the first",
            "returns the merged union of the given dicts",
            "merge two key value mappings together",
        ],
        body: "{A} = {}\nfor {K}, {V} in {P}.items():\n    {A}[{K}] = {V}\nfor {K}, {V} in {W}.items():\n    {A}[{K}] = {V}\nreturn {A}\n",
    },
    Family {
        key: "group_by_key",
        descriptions: &[
            "group records by a key field",
            "group the input rows into buckets by their key attribute",
            "returns groups mapping each key to the records sharing it",
            "partition items into groups with equal keys",
        ],
        body: "{A} = {}\nfor {V} in {P}:\n    {K} = {V}['key']\n    if {K} not in {A}:\n        {A}[{K}] = []\n    {A}[{K}].append({V})\nreturn {A}\n",
    },
    // ---- numeric algorithms group -------------------------------------------------
    Family {
        key: "is_prime",
        descriptions: &[
            "check whether a number is prime",
            "test if the given integer is prime with no divisors",
            "returns true when the input is a prime number",
            "decide whether a number is prime",
        ],
        body: "if {P} < 2:\n    return False\nfor {V} in range(2, {P}):\n    if {P} % {V} == 0:\n        return False\nreturn True\n",
    },
    Family {
        key: "factorial",
        descriptions: &[
            "compute the factorial of a number",
            "multiply the integers from one up to n to get the factorial",
            "returns the factorial of the given n",
            "calculate n factorial as a product of integers",
        ],
        body: "{A} = 1\nfor {V} in range(1, {P} + 1):\n    {A} *= {V}\nreturn {A}\n",
    },
    Family {
        key: "fibonacci",
        descriptions: &[
            "compute the nth fibonacci number",
            "returns the fibonacci value at the given position",
            "calculate a term of the fibonacci sequence",
            "produce the fibonacci number of n iteratively",
        ],
        body: "{A} = 0\n{W} = 1\nfor {V} in range({P}):\n    {A}, {W} = {W}, {A} + {W}\nreturn {A}\n",
    },
    Family {
        key: "gcd",
        descriptions: &[
            "compute the greatest common divisor of two numbers",
            "returns the gcd greatest common divisor of the given pair",
            "find the gcd the largest integer dividing both inputs",
            "calculate the greatest common divisor factor",
        ],
        body: "{A} = {P}\n{W} = {K}\nwhile {W} != 0:\n    {A}, {W} = {W}, {A} % {W}\nreturn {A}\n",
    },
    // ---- streaming / sensor group ---------------------------------------------------
    Family {
        key: "detect_anomaly",
        descriptions: &[
            "detect anomalies in sensor readings",
            "flag anomalies where values deviate too far from the mean",
            "returns the anomalous readings outside the allowed band",
            "find anomalies and outliers in a stream of measurements",
        ],
        body: "{A} = []\nfor {V} in {P}:\n    if abs({V} - self.mean) > self.threshold:\n        {A}.append({V})\nreturn {A}\n",
    },
    Family {
        key: "normalize_values",
        descriptions: &[
            "normalize a list of values to the unit interval",
            "normalize the measurements rescaling them between zero and one",
            "returns the input normalized by its maximum",
            "normalize readings so the largest becomes one",
        ],
        body: "{K} = max({P})\n{A} = []\nfor {V} in {P}:\n    {A}.append({V} / {K})\nreturn {A}\n",
    },
    Family {
        key: "moving_average",
        descriptions: &[
            "compute the moving average of a series",
            "smooth a signal with a sliding window moving average",
            "returns the rolling moving average of the measurements",
            "calculate windowed moving average means over the input stream",
        ],
        body: "{A} = []\nfor {V} in range(len({P}) - self.window + 1):\n    {K} = 0\n    for {W} in {P}[{V}:{V} + self.window]:\n        {K} += {W}\n    {A}.append({K} / self.window)\nreturn {A}\n",
    },
    Family {
        key: "threshold_filter",
        descriptions: &[
            "keep the readings above a threshold",
            "filter a stream dropping values below the threshold",
            "returns the measurements exceeding the threshold cutoff",
            "select sensor values larger than the threshold limit",
        ],
        body: "{A} = []\nfor {V} in {P}:\n    if {V} > self.threshold:\n        {A}.append({V})\nreturn {A}\n",
    },
    // ---- encoding group ---------------------------------------------------------------
    Family {
        key: "parse_csv_row",
        descriptions: &[
            "parse a comma separated csv row into fields",
            "split a csv line into its comma separated columns",
            "returns the csv values delimited by commas",
            "tokenise a csv record separated by commas",
        ],
        body: "{A} = []\nfor {V} in {P}.split(','):\n    {A}.append({V}.strip())\nreturn {A}\n",
    },
    Family {
        key: "build_query_string",
        descriptions: &[
            "build a url query string from parameters",
            "encode a mapping as a query string of key value pairs",
            "returns the url query string for the given params",
            "serialise parameters into a url query string",
        ],
        body: "{A} = []\nfor {K}, {V} in {P}.items():\n    {A}.append(str({K}) + '=' + str({V}))\nreturn '&'.join({A})\n",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalogue_is_reasonably_large() {
        assert!(family_catalogue().len() >= 25);
    }

    #[test]
    fn keys_unique_and_descriptions_plentiful() {
        let keys: HashSet<_> = family_catalogue().iter().map(|f| f.key).collect();
        assert_eq!(keys.len(), family_catalogue().len());
        for f in family_catalogue() {
            assert!(f.descriptions.len() >= 4, "{}", f.key);
            assert!(!f.body.is_empty());
        }
    }

    #[test]
    fn bodies_have_balanced_placeholders() {
        for f in family_catalogue() {
            for ph in ["{P}", "{A}", "{V}", "{K}", "{W}", "{F}"] {
                // Every placeholder that appears must appear as a whole token
                // (sanity: no '{' left unmatched by the substitution set).
                let _ = ph;
            }
            let stripped = f
                .body
                .replace("{P}", "p")
                .replace("{A}", "a")
                .replace("{V}", "v")
                .replace("{K}", "k")
                .replace("{W}", "w")
                .replace("{F}", "f"); // `{}` dict literals are untouched
            assert!(
                !stripped.contains("{P")
                    && !stripped.contains("{A")
                    && !stripped.contains("{V"),
                "{}: unsubstituted placeholder in {stripped}",
                f.key
            );
        }
    }

    #[test]
    fn substituted_bodies_parse() {
        for f in family_catalogue() {
            let body = f
                .body
                .replace("{P}", "data")
                .replace("{A}", "result")
                .replace("{V}", "item")
                .replace("{K}", "key")
                .replace("{W}", "aux")
                .replace("{F}", "fh");
            let src = format!("def _process(self, data):\n{}",
                body.lines().map(|l| format!("    {l}\n")).collect::<String>());
            let tree = pyparse::parse(&src);
            assert!(tree.errors.is_empty(), "{}: {:?}\n{src}", f.key, tree.errors);
        }
    }
}
