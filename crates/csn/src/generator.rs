//! Deterministic corpus generation.

use crate::families::{family_catalogue, Family};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Number of families used (cycles through the catalogue when larger).
    pub families: usize,
    /// Code variants generated per family.
    pub variants_per_family: usize,
    /// RNG seed — same seed, same corpus.
    pub seed: u64,
    /// Probability that a variant carries a docstring (CodeSearchNet
    /// functions usually have one; some don't).
    pub docstring_prob: f64,
    /// Probability of each decoy statement being injected.
    pub decoy_prob: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            families: family_catalogue().len(),
            variants_per_family: 10,
            seed: 42,
            // CodeSearchNet only includes documented functions, so almost
            // every converted PE carries a docstring.
            docstring_prob: 0.9,
            decoy_prob: 0.35,
        }
    }
}

/// One generated PE.
#[derive(Debug, Clone)]
pub struct PeEntry {
    /// Unique id (dense, 0-based).
    pub id: u64,
    /// Family index into the used-family list.
    pub family: usize,
    /// Unique class/PE name (§VII-A's unique identifiers).
    pub name: String,
    /// Full PE class source.
    pub code: String,
    /// Ground-truth description (a paraphrase of the family description) —
    /// the evaluation's query text.
    pub description: String,
}

/// The generated corpus.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub entries: Vec<PeEntry>,
    pub config: DatasetConfig,
    /// Keys of the families actually used, in order.
    pub family_keys: Vec<String>,
}

const PARAMS: &[&str] = &["data", "items", "values", "xs", "seq", "records"];
const ACCS: &[&str] = &["total", "result", "acc", "out", "collected"];
const VARS: &[&str] = &["item", "x", "v", "elem", "entry"];
const KEYS: &[&str] = &["key", "k", "name", "field"];
const AUXS: &[&str] = &["aux", "other", "extra", "tmp"];
const FILES: &[&str] = &["fh", "f", "handle", "stream"];

const DECOYS: &[&str] = &[
    "self.processed = self.processed + 1",
    "logger.debug('processing input')",
    "checked = True",
];

/// Docstring lead-ins: real CodeSearchNet docstrings differ per function
/// even when semantics coincide, so exact-string matching must not work.
const DOC_LEADS: &[&str] = &["", "Helper that will ", "PE implementation: ", "Utility to "];

/// Generic trailing methods (non-discriminative padding). Appended *after*
/// `_process`, so suffix truncation removes padding before it removes the
/// semantic core — mirroring how CodeSearchNet functions keep their intent
/// near the top.
const PADDING_METHODS: &[&str] = &[
    "    def setup(self):\n        self.processed = 0\n        self.debug = False\n",
    "    def teardown(self):\n        logger.info('finished')\n        self.open = False\n",
    "    def report(self):\n        return {'processed': self.processed}\n",
];

impl Dataset {
    /// Generate a corpus.
    pub fn generate(config: DatasetConfig) -> Dataset {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let catalogue = family_catalogue();
        let mut entries = Vec::new();
        let mut family_keys = Vec::new();
        let mut id = 0u64;
        for fam_idx in 0..config.families {
            let family = &catalogue[fam_idx % catalogue.len()];
            family_keys.push(family.key.to_string());
            for variant in 0..config.variants_per_family {
                let entry = make_variant(family, fam_idx, variant, id, &config, &mut rng);
                entries.push(entry);
                id += 1;
            }
        }
        Dataset {
            entries,
            config,
            family_keys,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids relevant to `entry` (same family, excluding the entry itself).
    pub fn relevant_to(&self, entry: &PeEntry) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|e| e.family == entry.family && e.id != entry.id)
            .map(|e| e.id)
            .collect()
    }

    /// Entries grouped by family index.
    pub fn by_family(&self) -> HashMap<usize, Vec<&PeEntry>> {
        let mut m: HashMap<usize, Vec<&PeEntry>> = HashMap::new();
        for e in &self.entries {
            m.entry(e.family).or_default().push(e);
        }
        m
    }
}

fn camel(key: &str) -> String {
    key.split('_')
        .map(|p| {
            let mut c = p.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn make_variant(
    family: &Family,
    fam_idx: usize,
    variant: usize,
    id: u64,
    config: &DatasetConfig,
    rng: &mut StdRng,
) -> PeEntry {
    // Identifier choices (consistent within the variant).
    let p = pick(rng, PARAMS);
    let mut a = pick(rng, ACCS);
    while a == p {
        a = pick(rng, ACCS);
    }
    let mut v = pick(rng, VARS);
    while v == p || v == a {
        v = pick(rng, VARS);
    }
    let k = pick(rng, KEYS);
    let w = pick(rng, AUXS);
    let f = pick(rng, FILES);

    let mut body = family
        .body
        .replace("{P}", p)
        .replace("{A}", a)
        .replace("{V}", v)
        .replace("{K}", k)
        .replace("{W}", w)
        .replace("{F}", f);

    // Decoy statements at the top of the body.
    for decoy in DECOYS {
        if rng.gen_bool(config.decoy_prob) {
            body = format!("{decoy}\n{body}");
        }
    }

    // Unique name: CamelCase key + PE + id (§VII-A unique identifiers).
    let name = format!("{}PE{}", camel(family.key), id);

    // Docstring: a *different* paraphrase than the query description when
    // possible, mimicking CodeSearchNet's docstring/query split.
    let desc_idx = rng.gen_range(0..family.descriptions.len());
    let description = family.descriptions[desc_idx].to_string();
    // CodeSearchNet queries *are* the functions' docstrings, and CodeT5
    // (trained on docstring generation) reproduces them closely — so the
    // stored docstring often coincides with the query paraphrase, and
    // sometimes drifts to another phrasing. Half/half models CodeT5's
    // good-but-imperfect generation.
    let doc_idx = if rng.gen_bool(0.5) {
        desc_idx
    } else {
        (desc_idx + 1 + rng.gen_range(0..family.descriptions.len().saturating_sub(1)))
            % family.descriptions.len()
    };
    let docstring = if rng.gen_bool(config.docstring_prob) {
        let lead = DOC_LEADS[rng.gen_range(0..DOC_LEADS.len())];
        let text = if lead.is_empty() {
            capitalise(family.descriptions[doc_idx])
        } else {
            format!("{lead}{}", family.descriptions[doc_idx])
        };
        format!("    \"\"\"{text}.\"\"\"\n")
    } else {
        String::new()
    };

    // Extra param for two-argument families.
    let extra_param = if family.body.contains("{K}") && !family.body.contains(".items()") {
        format!(", {k}")
    } else if family.body.contains("{W}") && family.body.contains(".items()") {
        format!(", {w}")
    } else {
        String::new()
    };

    let indented: String = body.lines().map(|l| format!("        {l}\n")).collect();
    let mut code = format!(
        "class {name}(IterativePE):\n{docstring}    def _process(self, {p}{extra_param}):\n{indented}"
    );
    // Trailing padding methods: truncation removes these first.
    for method in PADDING_METHODS {
        if rng.gen_bool(0.8) {
            code.push('\n');
            code.push_str(method);
        }
    }

    let _ = variant;
    let _ = fam_idx;
    PeEntry {
        id,
        family: fam_idx,
        name,
        code,
        description,
    }
}

fn capitalise(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::generate(DatasetConfig {
            families: 10,
            variants_per_family: 5,
            seed: 7,
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.code, y.code);
            assert_eq!(x.description, y.description);
        }
        let c = Dataset::generate(DatasetConfig {
            seed: 8,
            families: 10,
            variants_per_family: 5,
            ..DatasetConfig::default()
        });
        assert!(
            a.entries.iter().zip(&c.entries).any(|(x, y)| x.code != y.code),
            "different seed must change something"
        );
    }

    #[test]
    fn sizes_and_unique_names() {
        let d = small();
        assert_eq!(d.len(), 50);
        let names: std::collections::HashSet<_> = d.entries.iter().map(|e| &e.name).collect();
        assert_eq!(names.len(), 50, "unique identifiers per §VII-A");
    }

    #[test]
    fn every_generated_pe_parses_cleanly() {
        let d = Dataset::generate(DatasetConfig {
            families: family_catalogue().len(),
            variants_per_family: 4,
            seed: 3,
            ..DatasetConfig::default()
        });
        for e in &d.entries {
            let tree = pyparse::parse(&e.code);
            assert!(tree.errors.is_empty(), "{}:\n{}\n{:?}", e.name, e.code, tree.errors);
            assert_eq!(tree.find_kind(pyparse::SyntaxKind::ClassDef).len(), 1);
        }
    }

    #[test]
    fn relevance_groups_are_family_mates() {
        let d = small();
        let e = &d.entries[0];
        let rel = d.relevant_to(e);
        assert_eq!(rel.len(), 4, "4 other variants in the family");
        for id in rel {
            assert_eq!(d.entries[id as usize].family, e.family);
        }
    }

    #[test]
    fn variants_differ_within_family() {
        let d = small();
        let fam0: Vec<_> = d.entries.iter().filter(|e| e.family == 0).collect();
        let distinct_codes: std::collections::HashSet<_> =
            fam0.iter().map(|e| &e.code).collect();
        assert!(distinct_codes.len() >= 4, "renaming/decoys must vary the code");
    }

    #[test]
    fn by_family_partition() {
        let d = small();
        let groups = d.by_family();
        assert_eq!(groups.len(), 10);
        assert!(groups.values().all(|g| g.len() == 5));
    }

    #[test]
    fn descriptions_come_from_the_family() {
        let d = small();
        for e in &d.entries {
            let fam = &family_catalogue()[e.family % family_catalogue().len()];
            assert!(fam.descriptions.contains(&e.description.as_str()));
        }
    }

    #[test]
    fn families_beyond_catalogue_cycle() {
        let d = Dataset::generate(DatasetConfig {
            families: family_catalogue().len() + 3,
            variants_per_family: 1,
            seed: 1,
            ..DatasetConfig::default()
        });
        assert_eq!(d.family_keys.len(), family_catalogue().len() + 3);
        assert_eq!(d.family_keys[0], d.family_keys[family_catalogue().len()]);
    }
}
