//! Precision / recall / F1 machinery for the retrieval experiments
//! (paper §VII-C/D: "precision reflects the proportion of relevant PEs
//! retrieved, and recall indicates how many relevant PEs were successfully
//! identified").

use std::collections::HashSet;

/// One point of a precision-recall curve (averaged over queries at depth `k`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    pub k: usize,
    pub precision: f64,
    pub recall: f64,
}

impl PrPoint {
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Precision and recall of one ranked list cut at depth `k`.
///
/// `ranked` must not contain duplicate ids (rankings are id lists).
pub fn precision_recall_at_k(ranked: &[u64], relevant: &HashSet<u64>, k: usize) -> (f64, f64) {
    if k == 0 || relevant.is_empty() {
        return (0.0, 0.0);
    }
    let k = k.min(ranked.len());
    if k == 0 {
        return (0.0, 0.0);
    }
    let hits = ranked[..k].iter().filter(|id| relevant.contains(id)).count() as f64;
    (hits / k as f64, hits / relevant.len() as f64)
}

/// Average precision-recall curve over many queries, for k = 1..=max_k.
/// Each query is `(ranked ids, relevant ids)`.
pub fn pr_curve(queries: &[(Vec<u64>, HashSet<u64>)], max_k: usize) -> Vec<PrPoint> {
    let mut points = Vec::with_capacity(max_k);
    let usable: Vec<&(Vec<u64>, HashSet<u64>)> =
        queries.iter().filter(|(_, rel)| !rel.is_empty()).collect();
    if usable.is_empty() {
        return points;
    }
    for k in 1..=max_k {
        let (mut p_sum, mut r_sum) = (0.0, 0.0);
        for (ranked, relevant) in &usable {
            let (p, r) = precision_recall_at_k(ranked, relevant, k);
            p_sum += p;
            r_sum += r;
        }
        points.push(PrPoint {
            k,
            precision: p_sum / usable.len() as f64,
            recall: r_sum / usable.len() as f64,
        });
    }
    points
}

/// The best F1 along a curve and the depth achieving it.
pub fn best_f1(curve: &[PrPoint]) -> (f64, usize) {
    curve
        .iter()
        .map(|p| (p.f1(), p.k))
        .fold((0.0, 0), |best, cur| if cur.0 > best.0 { cur } else { best })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(ids: &[u64]) -> HashSet<u64> {
        ids.iter().copied().collect()
    }

    #[test]
    fn precision_recall_basics() {
        let ranked = vec![1, 2, 3, 4, 5];
        let relevant = rel(&[1, 3, 9]);
        let (p, r) = precision_recall_at_k(&ranked, &relevant, 1);
        assert_eq!((p, r), (1.0, 1.0 / 3.0));
        let (p, r) = precision_recall_at_k(&ranked, &relevant, 3);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
        let (p, r) = precision_recall_at_k(&ranked, &relevant, 5);
        assert!((p - 0.4).abs() < 1e-12);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_beyond_list_truncates() {
        let ranked = vec![1, 2];
        let relevant = rel(&[1, 2]);
        let (p, r) = precision_recall_at_k(&ranked, &relevant, 10);
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(precision_recall_at_k(&[], &rel(&[1]), 5), (0.0, 0.0));
        assert_eq!(precision_recall_at_k(&[1], &rel(&[]), 5), (0.0, 0.0));
        assert_eq!(precision_recall_at_k(&[1], &rel(&[1]), 0), (0.0, 0.0));
    }

    #[test]
    fn curve_shape_precision_falls_recall_rises() {
        // A ranking with relevant items up front: precision must be
        // non-increasing and recall non-decreasing along k.
        let queries = vec![
            (vec![1, 2, 3, 4, 5, 6], rel(&[1, 2])),
            (vec![10, 11, 12, 13, 14, 15], rel(&[10, 12])),
        ];
        let curve = pr_curve(&queries, 6);
        assert_eq!(curve.len(), 6);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall - 1e-12, "{curve:?}");
        }
        assert!(curve[0].precision >= curve[5].precision);
        assert!((curve[5].recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_f1_finds_the_peak() {
        let queries = vec![(vec![1, 2, 9, 9, 9], rel(&[1, 2]))];
        let curve = pr_curve(&queries, 5);
        let (f1, k) = best_f1(&curve);
        assert_eq!(k, 2, "{curve:?}");
        assert!((f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn queries_without_relevant_items_are_skipped() {
        let queries = vec![
            (vec![1, 2], rel(&[1])),
            (vec![3, 4], rel(&[])), // skipped
        ];
        let curve = pr_curve(&queries, 2);
        assert_eq!(curve[0].precision, 1.0);
    }

    #[test]
    fn empty_curve() {
        assert!(pr_curve(&[], 5).is_empty());
        assert_eq!(best_f1(&[]), (0.0, 0));
    }

    #[test]
    fn f1_harmonic_mean() {
        let p = PrPoint { k: 1, precision: 0.5, recall: 1.0 };
        assert!((p.f1() - 2.0 / 3.0).abs() < 1e-12);
        let z = PrPoint { k: 1, precision: 0.0, recall: 0.0 };
        assert_eq!(z.f1(), 0.0);
    }
}
