//! `csn` — the *CodeSearchNet PE dataset* substitute (paper §VII-A).
//!
//! The paper converts ~450k CodeSearchNet Python functions into Laminar's
//! PE format, groups semantically-similar PEs by their descriptions, and
//! uses the groups as retrieval ground truth. That corpus cannot ship with
//! an offline reproduction, so this crate generates a synthetic corpus with
//! the same *evaluation-relevant structure*:
//!
//! * a catalogue of **semantic families** (sum-a-list, read-a-file,
//!   detect-anomalies, …), each with several natural-language description
//!   paraphrases — families are deliberately topically overlapping
//!   (several list families, several file families) so retrieval is
//!   realistically imperfect;
//! * per family, many **code variants**: renamed identifiers, optional
//!   docstrings, injected decoy statements, equivalent-but-reordered
//!   bodies — wrapped into Laminar PE classes with unique names
//!   (§VII-A's "unique identifier to avoid ambiguity");
//! * deterministic generation from a seed.
//!
//! [`metrics`] holds the precision/recall/F1 machinery shared by the
//! Fig. 11/12/13 harnesses.

pub mod families;
pub mod generator;
pub mod metrics;

pub use families::{family_catalogue, Family};
pub use generator::{Dataset, DatasetConfig, PeEntry};
pub use metrics::{best_f1, pr_curve, precision_recall_at_k, PrPoint};
