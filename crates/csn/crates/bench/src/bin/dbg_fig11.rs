use embed::{CodeT5Sim, DescriptionContext, UniXcoderSim};
fn main() {
    let corpus = laminar_bench::standard_corpus();
    let gen = CodeT5Sim::new(DescriptionContext::FullClass);
    let emb = UniXcoderSim::new();
    let e = &corpus.entries[0];
    println!("QUERY: {}", e.description);
    let q = emb.embed_text(&e.description);
    let mut scored: Vec<(f32, usize)> = corpus.entries.iter().enumerate()
        .map(|(i, s)| (q.cosine(&emb.embed_text(&gen.describe_pe(&s.code))), i)).collect();
    scored.sort_by(|a,b| b.0.partial_cmp(&a.0).unwrap());
    for (score, i) in scored.iter().take(12) {
        let s = &corpus.entries[*i];
        println!("{score:.3} fam={} {} :: {}", s.family, s.name, gen.describe_pe(&s.code));
    }
}
