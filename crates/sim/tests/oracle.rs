//! End-to-end checks of the simulation harness itself:
//!
//! * a clean run finds no violations and replays bit-identically — same
//!   seed, same trace, same digest;
//! * a deliberately broken invariant (losing the WAL before the final
//!   restart) is caught, which proves the oracle is actually looking. A
//!   harness that never fires is indistinguishable from one that checks
//!   nothing.

use laminar_sim::{run_sim, Mutation, SimOptions};

#[test]
fn clean_run_is_violation_free_and_bit_identical() {
    let opts = SimOptions {
        seed: 21,
        episodes: 1,
        ops_per_episode: 15,
        mutate: None,
    };
    let a = run_sim(&opts);
    assert!(
        a.ok(),
        "clean run must be violation-free: {:?}",
        a.violations
    );
    assert!(a.ops_run > 0);
    let b = run_sim(&opts);
    assert_eq!(a.trace, b.trace, "same seed must replay the same trace");
    assert_eq!(a.digest, b.digest);
}

#[test]
fn different_seeds_diverge() {
    let run = |seed| {
        run_sim(&SimOptions {
            seed,
            episodes: 1,
            ops_per_episode: 10,
            mutate: None,
        })
    };
    assert_ne!(
        run(31).digest,
        run(32).digest,
        "different seeds must explore different histories"
    );
}

#[test]
fn losing_the_wal_is_caught() {
    let report = run_sim(&SimOptions {
        seed: 41,
        episodes: 1,
        ops_per_episode: 8,
        mutate: Some(Mutation::LoseWal),
    });
    assert!(
        !report.ok(),
        "deleting the WAL must trip the durability oracle"
    );
}
