//! Network-fault wrapper in isolation, against a real in-process server:
//! every fault kind, on either side of a frame exchange, must surface as
//! a typed error or a successful retry — never a wedged call, never an
//! untyped failure. The journal must always record the *true*
//! server-side outcome, including effects the client never saw.

use laminar_client::{ClientError, LaminarClient, RetryPolicy};
use laminar_core::{Laminar, LaminarConfig};
use laminar_server::protocol::{FaultPolicyWire, Ident, RunInputWire, RunMode};
use laminar_server::{ConnectionError, DeliveryMode, Transport};
use laminar_sim::{CallOutcome, FaultyConn, NetFault, NetState};
use std::sync::Arc;
use std::time::Duration;

/// Deploy an in-memory stack and a logged-in client routed through a
/// quiescent `FaultyConn` with the given attempt budget.
fn stack(max_attempts: u32) -> (Laminar, Arc<NetState>, LaminarClient) {
    let laminar = Laminar::try_deploy(LaminarConfig {
        cold_start: Duration::ZERO,
        ..LaminarConfig::default()
    })
    .expect("deploy");
    laminar.seed_stock_registry().expect("stock");
    let net = NetState::new(7);
    let transport = Transport::new(laminar.server(), DeliveryMode::Streaming);
    let mut client = LaminarClient::over(FaultyConn::new(transport, net.clone()))
        .with_retry(RetryPolicy {
            max_attempts,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        });
    client.login("stock", "stock").expect("login");
    net.drain_journal(); // isolate each test's observations
    (laminar, net, client)
}

#[test]
fn every_value_fault_is_typed_with_no_retry_budget() {
    let (_laminar, net, client) = stack(1);

    // Delay: the call still succeeds.
    net.push_script(Some(NetFault::Delay));
    client.metrics().expect("delay is harmless");

    // DropRequest: never delivered, typed timeout.
    net.push_script(Some(NetFault::DropRequest));
    match client.metrics() {
        Err(ClientError::Connection(ConnectionError::TimedOut { .. })) => {}
        other => panic!("drop-request should time out, got {other:?}"),
    }

    // DisconnectBeforeSend: never delivered, typed unavailable.
    net.push_script(Some(NetFault::DisconnectBeforeSend));
    match client.metrics() {
        Err(ClientError::Connection(ConnectionError::Unavailable(_))) => {}
        other => panic!("disconnect-before-send should be unavailable, got {other:?}"),
    }

    // DuplicateRequest: executed twice, second reply returned.
    net.drain_journal();
    net.push_script(Some(NetFault::DuplicateRequest));
    client.metrics().expect("duplicate still answers");
    let dup_records: Vec<_> = net
        .drain_journal()
        .into_iter()
        .filter(|r| r.fault == Some(NetFault::DuplicateRequest))
        .collect();
    assert_eq!(dup_records.len(), 2, "both executions must be journalled");

    // DropReply: executed server-side, client sees a typed timeout.
    net.push_script(Some(NetFault::DropReply));
    match client.metrics() {
        Err(ClientError::Connection(ConnectionError::TimedOut { .. })) => {}
        other => panic!("drop-reply should time out, got {other:?}"),
    }
    let rec = net.drain_journal().pop().expect("journalled");
    assert!(
        matches!(rec.outcome, CallOutcome::Value(_)),
        "the journal must show the server answered: {rec:?}"
    );

    // DisconnectAfterReply: executed, surfaced as a protocol error.
    net.push_script(Some(NetFault::DisconnectAfterReply));
    match client.metrics() {
        Err(ClientError::Connection(ConnectionError::Protocol(_))) => {}
        other => panic!("disconnect-after-reply should be protocol, got {other:?}"),
    }
}

#[test]
fn transient_faults_recover_under_retry() {
    let (_laminar, net, client) = stack(4);

    // Unavailable is always retried; the second attempt is clean.
    net.push_script(Some(NetFault::DisconnectBeforeSend));
    net.push_script(None);
    client.metrics().expect("retried to success");

    // A timed-out *idempotent* read is retried too.
    net.push_script(Some(NetFault::DropRequest));
    net.push_script(None);
    client.metrics().expect("idempotent timeout retried");

    // Even several consecutive faults stay within the budget.
    net.push_script(Some(NetFault::DisconnectBeforeSend));
    net.push_script(Some(NetFault::DisconnectBeforeSend));
    net.push_script(None);
    client.metrics().expect("two faults then clean");
}

#[test]
fn stream_faults_never_wedge_a_run() {
    let (_laminar, net, client) = stack(4);
    let run = |c: &LaminarClient| {
        c.run_custom_faults(
            Ident::Name("isprime_wf".into()),
            RunInputWire::Iterations(3),
            RunMode::Sequential,
            false,
            FaultPolicyWire::default(),
            None,
        )
    };

    // Baseline: the stock workflow runs clean through the wrapper.
    let out = run(&client).expect("clean run");
    assert!(out.ok, "clean run must succeed: {out:?}");
    net.drain_journal();

    // DropReply mid-stream: the wrapper drains the stream (server-side
    // effects settle), the client gets a typed timeout — Run is not
    // idempotent, so no blind re-send.
    net.push_script(Some(NetFault::DropReply));
    match run(&client) {
        Err(ClientError::Connection(ConnectionError::TimedOut { .. })) => {}
        other => panic!("drop-reply run should time out, got {other:?}"),
    }
    let rec = net.drain_journal().pop().expect("journalled");
    assert!(
        matches!(rec.outcome, CallOutcome::StreamDrained { ok: true }),
        "the lost stream must be drained to completion: {rec:?}"
    );

    // DisconnectAfterReply mid-stream: typed protocol error, drained.
    net.push_script(Some(NetFault::DisconnectAfterReply));
    match run(&client) {
        Err(ClientError::Connection(ConnectionError::Protocol(_))) => {}
        other => panic!("disconnect run should be protocol, got {other:?}"),
    }

    // DisconnectBeforeSend: provably never dispatched, so the client
    // retries even a run; second attempt succeeds.
    net.drain_journal();
    net.push_script(Some(NetFault::DisconnectBeforeSend));
    net.push_script(None);
    let out = run(&client).expect("undelivered run retried");
    assert!(out.ok);

    // DuplicateRequest downgrades to Delay for runs: exactly one
    // execution in the journal, and the call succeeds.
    net.drain_journal();
    net.push_script(Some(NetFault::DuplicateRequest));
    let out = run(&client).expect("duplicate run downgraded");
    assert!(out.ok);
    let records = net.drain_journal();
    assert_eq!(records.len(), 1, "one execution only: {records:?}");
    assert_eq!(records[0].fault, Some(NetFault::Delay));
}

#[test]
fn ambiguous_ack_journal_records_the_committed_mutation() {
    let (_laminar, net, client) = stack(1);

    // The reply to a registration is lost: the client cannot know the
    // outcome, but the journal must show the commit and its id.
    net.push_script(Some(NetFault::DropReply));
    match client.register_pe("GhostAck", "class GhostAck(IterativePE):\n    def _process(self, x):\n        return x\n", Some("ambiguous ack pe")) {
        Err(ClientError::Connection(ConnectionError::TimedOut { .. })) => {}
        other => panic!("lost-reply registration should time out, got {other:?}"),
    }
    let rec = net.drain_journal().pop().expect("journalled");
    match rec.outcome {
        CallOutcome::Value(laminar_server::Response::Registered { ref pe_ids, .. }) => {
            assert_eq!(pe_ids.len(), 1);
            assert_eq!(pe_ids[0].0, "GhostAck");
        }
        ref other => panic!("journal must hold the true outcome, got {other:?}"),
    }
    // And the server really has it.
    let pe = client.get_pe(Ident::Name("GhostAck".into())).expect("committed");
    assert_eq!(pe.id, {
        match net.drain_journal().pop().unwrap().outcome {
            CallOutcome::Value(laminar_server::Response::Pe(info)) => info.id,
            other => panic!("unexpected {other:?}"),
        }
    });
}
