//! Deterministic whole-system simulation for Laminar.
//!
//! FoundationDB-style testing: the entire server — registry, WAL,
//! snapshots, execution engine, search and recommendation indexes,
//! health state machine — runs in-process on a virtual clock, driven by
//! a seeded workload generator, with three composed fault planes
//! (registry disk faults, d4py enactment chaos, transport faults) plus
//! crash-restart cycles. Everything derives from one `u64` seed, so any
//! failure reprints as `SIM_SEED=<n>` and replays bit-identically.
//!
//! The harness keeps a reference model of the acknowledged-op history
//! and checks oracle invariants after every operation; see
//! [`harness`] for the invariant list and `DESIGN.md` §13 for the
//! full write-up.
//!
//! Run it: `cargo run -p laminar-sim --release -- --seed 1337`

pub mod harness;
pub mod model;
pub mod netfault;
pub mod rng;
pub mod workload;

pub use harness::{run_sim, Mutation, SimOptions, SimReport};
pub use model::{PeModel, Presence, SimModel, WfModel};
pub use netfault::{CallOutcome, CallRecord, FaultyConn, NetFault, NetState};
pub use rng::SimRng;
pub use workload::{SimOp, Workload};
