//! The simulation's single source of randomness.
//!
//! Every nondeterministic decision in the harness — which op to issue,
//! which name to reuse, which fault plane to poke, when to crash — is
//! drawn from one [`SimRng`] tree rooted at the episode seed. Subsystems
//! get their own deterministic branch via [`SimRng::fork`], so adding a
//! draw in one module never shifts the schedule of another. The
//! generator is the same xorshift64 the registry's
//! `IoFaultInjector` uses; forks are decorrelated through a splitmix64
//! finalizer.

/// Deterministic xorshift64 generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

/// splitmix64 finalizer: decorrelates nearby seeds so `fork(1)` and
/// `fork(2)` do not produce overlapping streams.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    pub fn new(seed: u64) -> SimRng {
        // xorshift must not start at 0.
        SimRng {
            state: splitmix64(seed) | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform draw in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u32) -> bool {
        self.below(100) < u64::from(percent)
    }

    /// Skewed draw in `0..n`: min of two uniforms, so low indexes are
    /// reused much more often — the key-reuse distribution the workload
    /// generator wants (hot names collide, cold names stay fresh).
    pub fn skewed(&mut self, n: u64) -> u64 {
        self.below(n).min(self.below(n))
    }

    /// Uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// A decorrelated child generator for a labelled subsystem.
    pub fn fork(&mut self, label: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ splitmix64(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        for _ in 0..20 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
        let mut other = SimRng::new(7).fork(2);
        assert_ne!(fa.next_u64(), other.next_u64());
    }

    #[test]
    fn skewed_prefers_low_indexes() {
        let mut rng = SimRng::new(1);
        let mut low = 0u32;
        for _ in 0..1000 {
            if rng.skewed(10) < 5 {
                low += 1;
            }
        }
        // min-of-two gives P(x < 5) = 1 - 0.25 = 0.75.
        assert!(low > 600, "{low}");
    }

    #[test]
    fn chance_and_below_bounds() {
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
        assert!(!rng.chance(0));
        assert!(rng.chance(100));
    }
}
