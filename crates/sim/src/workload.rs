//! Seeded workload generator.
//!
//! Draws a weighted stream of operations over small, deliberately
//! colliding name pools: PE and workflow names are picked with a
//! min-of-two-uniforms skew, so hot names are re-registered, updated,
//! removed and re-created constantly — exactly the history interleavings
//! (duplicate reuse, remove/re-register, FK-blocked removes) the oracle
//! exists to check. Code bodies vary per draw so duplicate-reuse
//! semantics (first registration's code wins) are actually observable.

use crate::model::SimModel;
use crate::rng::SimRng;
use laminar_server::protocol::{
    BatchItemWire, FaultPolicyWire, Ident, PeSubmission, RunMode, SearchScope,
};

/// PE class-name pool (skew-reused).
const PE_NAMES: [&str; 8] = [
    "SimScale", "SimShift", "SimGate", "SimTag", "SimFold", "SimEcho", "SimTrim", "SimRank",
];

/// Workflow name pool. These have registry rows but no engine builder,
/// so running one exercises the typed engine-lookup error path.
const WF_NAMES: [&str; 5] = ["sim_wf_a", "sim_wf_b", "sim_wf_c", "sim_wf_d", "sim_wf_e"];

/// Runnable targets: stock builders plus the chaos workflow the harness
/// installs. Weighted toward chaos.
const RUN_TARGETS: [&str; 6] = [
    "isprime_wf",
    "doubler_wf",
    "isprime_wf",
    "chaos_wf",
    "chaos_wf",
    "doubler_wf",
];

const SEARCH_TERMS: [&str; 6] = ["prime", "sim", "anomaly", "count", "double", "stream"];

const QUERIES: [&str; 5] = [
    "find prime numbers in a stream",
    "scale numeric values",
    "count words in sentences",
    "detect anomalies",
    "double every number",
];

const SNIPPETS: [&str; 4] = [
    "random.randint(1, 1000)",
    "return x * 2",
    "print('the num')",
    "words = line.split()",
];

const COMPLETION_PREFIXES: [&str; 3] = [
    "class IsPrime(IterativePE):\n    def _process(self, num):",
    "class SimScale(IterativePE):\n    def _process(self, x):",
    "class Sentences(ProducerPE):\n    def _process(self, inputs):",
];

/// One generated operation. The harness maps these onto client calls.
#[derive(Debug, Clone)]
pub enum SimOp {
    RegisterPe { sub: PeSubmission },
    RegisterWorkflow { name: String, source: String },
    RegisterBatch { items: Vec<BatchItemWire> },
    GetPe { ident: Ident },
    GetWorkflow { ident: Ident },
    GetPesByWorkflow { ident: Ident },
    GetRegistry,
    Describe { ident: Ident },
    UpdatePeDescription { ident: Ident, description: String },
    RemovePe { ident: Ident },
    RemoveWorkflow { ident: Ident },
    RemoveAll,
    SearchLiteral { scope: SearchScope, term: String },
    SearchSemantic { scope: SearchScope, query: String },
    Recommend { snippet: String },
    Complete { snippet: String },
    Run { ident: Ident, iterations: u64, mode: RunMode, fault: FaultPolicyWire },
    GetExecutions { ident: Ident },
    Compact,
    Health,
    Metrics,
}

impl SimOp {
    /// Deterministic one-line label for the trace.
    pub fn label(&self) -> String {
        fn ident(i: &Ident) -> String {
            match i {
                Ident::Name(n) => n.clone(),
                Ident::Id(id) => format!("#{id}"),
            }
        }
        match self {
            SimOp::RegisterPe { sub } => format!("register-pe {}", sub.name),
            SimOp::RegisterWorkflow { name, .. } => format!("register-wf {name}"),
            SimOp::RegisterBatch { items } => format!("register-batch n={}", items.len()),
            SimOp::GetPe { ident: i } => format!("get-pe {}", ident(i)),
            SimOp::GetWorkflow { ident: i } => format!("get-wf {}", ident(i)),
            SimOp::GetPesByWorkflow { ident: i } => format!("get-pes-by-wf {}", ident(i)),
            SimOp::GetRegistry => "get-registry".into(),
            SimOp::Describe { ident: i } => format!("describe {}", ident(i)),
            SimOp::UpdatePeDescription { ident: i, .. } => format!("update-pe-desc {}", ident(i)),
            SimOp::RemovePe { ident: i } => format!("remove-pe {}", ident(i)),
            SimOp::RemoveWorkflow { ident: i } => format!("remove-wf {}", ident(i)),
            SimOp::RemoveAll => "remove-all".into(),
            SimOp::SearchLiteral { term, .. } => format!("search-literal '{term}'"),
            SimOp::SearchSemantic { query, .. } => format!("search-semantic '{query}'"),
            SimOp::Recommend { snippet } => {
                format!("recommend '{}'", snippet.lines().next().unwrap_or(""))
            }
            SimOp::Complete { snippet } => {
                format!("complete '{}'", snippet.lines().next().unwrap_or(""))
            }
            SimOp::Run {
                ident: i,
                iterations,
                mode,
                fault,
            } => {
                let m = match mode {
                    RunMode::Sequential => "seq".to_string(),
                    RunMode::Multiprocess { processes } => format!("mp{processes}"),
                    RunMode::Dynamic => "dyn".to_string(),
                };
                let f = match fault {
                    FaultPolicyWire::FailFast => "failfast".to_string(),
                    FaultPolicyWire::Retry { max_attempts, .. } => format!("retry{max_attempts}"),
                    FaultPolicyWire::DeadLetter { max_attempts } => {
                        format!("deadletter{max_attempts}")
                    }
                };
                format!("run {} x{iterations} {m} {f}", ident(i))
            }
            SimOp::GetExecutions { ident: i } => format!("get-executions {}", ident(i)),
            SimOp::Compact => "compact".into(),
            SimOp::Health => "health".into(),
            SimOp::Metrics => "metrics".into(),
        }
    }

    /// Does this op mutate the registry (subject to the degraded-mode
    /// write gate)?
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            SimOp::RegisterPe { .. }
                | SimOp::RegisterWorkflow { .. }
                | SimOp::RegisterBatch { .. }
                | SimOp::UpdatePeDescription { .. }
                | SimOp::RemovePe { .. }
                | SimOp::RemoveWorkflow { .. }
                | SimOp::RemoveAll
                | SimOp::Compact
        )
    }
}

/// The generator. Owns a forked rng branch; all draws are local so the
/// harness's own schedule is unaffected by how many draws one op costs.
pub struct Workload {
    rng: SimRng,
}

impl Workload {
    pub fn new(rng: SimRng) -> Workload {
        Workload { rng }
    }

    fn pe_name(&mut self) -> String {
        PE_NAMES[self.rng.skewed(PE_NAMES.len() as u64) as usize].to_string()
    }

    fn wf_name(&mut self) -> String {
        WF_NAMES[self.rng.skewed(WF_NAMES.len() as u64) as usize].to_string()
    }

    fn pe_code(&mut self, name: &str) -> String {
        let op = *self.rng.pick(&["+", "*", "-"]);
        let k = 2 + self.rng.below(8);
        format!("class {name}(IterativePE):\n    def _process(self, x):\n        return x {op} {k}\n")
    }

    fn pe_submission(&mut self) -> PeSubmission {
        let name = self.pe_name();
        let code = self.pe_code(&name);
        // Mostly explicit descriptions (stored verbatim — the model can
        // check them exactly); sometimes auto-generated (unknown until
        // the next read learns it).
        let description = if self.rng.chance(70) {
            Some(format!("sim pe {name} variant {}", self.rng.below(100)))
        } else {
            None
        };
        PeSubmission {
            name,
            code,
            description,
        }
    }

    /// Workflow source: 1–2 PE class bodies from the pool; the client
    /// extracts them as member submissions.
    fn wf_source(&mut self) -> String {
        let n = 1 + self.rng.below(2);
        let mut src = String::new();
        for _ in 0..n {
            let name = self.pe_name();
            src.push_str(&self.pe_code(&name));
            src.push('\n');
        }
        src
    }

    /// Pick an ident for a PE: a pool name, or (30% of the time, when
    /// the model knows one) a numeric id the model has confirmed —
    /// never a guessed id, so model resolution stays unambiguous.
    fn pe_ident(&mut self, model: &SimModel) -> Ident {
        if self.rng.chance(30) {
            let names = model.present_pe_names();
            if !names.is_empty() {
                let name = &names[self.rng.below(names.len() as u64) as usize];
                if let Some(id) = model.pe_id(name) {
                    return Ident::Id(id);
                }
            }
        }
        Ident::Name(self.pe_name())
    }

    fn wf_ident(&mut self) -> Ident {
        Ident::Name(self.wf_name())
    }

    fn run_fault_policy(&mut self, target: &str) -> FaultPolicyWire {
        if target != "chaos_wf" {
            return FaultPolicyWire::FailFast;
        }
        match self.rng.below(3) {
            0 => FaultPolicyWire::FailFast,
            1 => FaultPolicyWire::Retry {
                max_attempts: 3,
                backoff_ms: 1,
            },
            _ => FaultPolicyWire::DeadLetter { max_attempts: 2 },
        }
    }

    /// Draw the next operation.
    pub fn next_op(&mut self, model: &SimModel) -> SimOp {
        // (weight, kind) table; draw a point under the total.
        const WEIGHTS: [(u32, u32); 21] = [
            (14, 0),  // RegisterPe
            (9, 1),   // RegisterWorkflow
            (5, 2),   // RegisterBatch
            (9, 3),   // GetPe
            (5, 4),   // GetWorkflow
            (4, 5),   // GetPesByWorkflow
            (5, 6),   // GetRegistry
            (3, 7),   // Describe
            (6, 8),   // UpdatePeDescription
            (6, 9),   // RemovePe
            (4, 10),  // RemoveWorkflow
            (2, 11),  // RemoveAll
            (4, 12),  // SearchLiteral
            (5, 13),  // SearchSemantic
            (4, 14),  // Recommend
            (3, 15),  // Complete
            (12, 16), // Run
            (3, 17),  // GetExecutions
            (4, 18),  // Compact
            (3, 19),  // Health
            (2, 20),  // Metrics
        ];
        let total: u32 = WEIGHTS.iter().map(|(w, _)| w).sum();
        let mut point = self.rng.below(u64::from(total)) as u32;
        let mut kind = 0;
        for (w, k) in WEIGHTS {
            if point < w {
                kind = k;
                break;
            }
            point -= w;
        }
        match kind {
            0 => SimOp::RegisterPe {
                sub: self.pe_submission(),
            },
            1 => SimOp::RegisterWorkflow {
                name: self.wf_name(),
                source: self.wf_source(),
            },
            2 => {
                let n = 2 + self.rng.below(3);
                let items = (0..n)
                    .map(|_| {
                        if self.rng.chance(60) {
                            BatchItemWire::Pe(self.pe_submission())
                        } else {
                            let name = self.wf_name();
                            let source = self.wf_source();
                            let pes = laminar_client::extract_pes_from_source(&source);
                            BatchItemWire::Workflow {
                                name,
                                code: source,
                                description: Some("sim batch workflow".to_string()),
                                pes,
                            }
                        }
                    })
                    .collect();
                SimOp::RegisterBatch { items }
            }
            3 => SimOp::GetPe {
                ident: self.pe_ident(model),
            },
            4 => SimOp::GetWorkflow {
                ident: self.wf_ident(),
            },
            5 => SimOp::GetPesByWorkflow {
                ident: self.wf_ident(),
            },
            6 => SimOp::GetRegistry,
            7 => SimOp::Describe {
                ident: Ident::Name(self.pe_name()),
            },
            8 => SimOp::UpdatePeDescription {
                ident: self.pe_ident(model),
                description: format!("updated description {}", self.rng.below(1000)),
            },
            9 => SimOp::RemovePe {
                ident: self.pe_ident(model),
            },
            10 => SimOp::RemoveWorkflow {
                ident: self.wf_ident(),
            },
            11 => SimOp::RemoveAll,
            12 => SimOp::SearchLiteral {
                scope: SearchScope::Both,
                term: self.rng.pick(&SEARCH_TERMS).to_string(),
            },
            13 => SimOp::SearchSemantic {
                scope: SearchScope::Both,
                query: self.rng.pick(&QUERIES).to_string(),
            },
            14 => SimOp::Recommend {
                snippet: self.rng.pick(&SNIPPETS).to_string(),
            },
            15 => SimOp::Complete {
                snippet: self.rng.pick(&COMPLETION_PREFIXES).to_string(),
            },
            16 => {
                // Mostly runnable targets; sometimes a registered-but-
                // builderless workflow or a missing name (typed errors).
                let target = match self.rng.below(10) {
                    0 => self.wf_name(),
                    1 => "ghost_wf".to_string(),
                    _ => self.rng.pick(&RUN_TARGETS).to_string(),
                };
                let fault = self.run_fault_policy(&target);
                // FailFast + chaos + multiprocess aborts mid-stream at a
                // worker-interleaving-dependent point, which would leak
                // a nondeterministic line count into the trace; every
                // other combination is bit-stable.
                let failfast_chaos =
                    target == "chaos_wf" && matches!(fault, FaultPolicyWire::FailFast);
                let mode = if self.rng.chance(20) && !failfast_chaos {
                    RunMode::Multiprocess { processes: 2 }
                } else {
                    RunMode::Sequential
                };
                SimOp::Run {
                    ident: Ident::Name(target),
                    iterations: 1 + self.rng.skewed(8),
                    mode,
                    fault,
                }
            }
            17 => SimOp::GetExecutions {
                ident: Ident::Name(self.rng.pick(&RUN_TARGETS).to_string()),
            },
            18 => SimOp::Compact,
            19 => SimOp::Health,
            _ => SimOp::Metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_op_stream() {
        let model = SimModel::new();
        let ops = |seed: u64| -> Vec<String> {
            let mut w = Workload::new(SimRng::new(seed));
            (0..200).map(|_| w.next_op(&model).label()).collect()
        };
        assert_eq!(ops(11), ops(11));
        assert_ne!(ops(11), ops(12));
    }

    #[test]
    fn generator_covers_every_op_kind() {
        let model = SimModel::new();
        let mut w = Workload::new(SimRng::new(5));
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..2000 {
            let op = w.next_op(&model);
            kinds.insert(std::mem::discriminant(&op));
        }
        // All 21 variants should appear in 2000 draws.
        assert_eq!(kinds.len(), 21, "only {} op kinds drawn", kinds.len());
    }

    #[test]
    fn run_targets_are_never_duplicated_into_dynamic_mode() {
        let model = SimModel::new();
        let mut w = Workload::new(SimRng::new(9));
        for _ in 0..500 {
            if let SimOp::Run { mode, .. } = w.next_op(&model) {
                assert!(!matches!(mode, RunMode::Dynamic));
            }
        }
    }
}
