//! The whole-system simulation harness.
//!
//! One seed drives everything: the workload stream, the transport fault
//! plane ([`crate::netfault`]), the registry's disk-fault injector, the
//! d4py enactment chaos, and the crash-restart schedule. Each episode
//! stands up the full server in-process (registry + engine + indexes +
//! recommendation + health, on a virtual [`SimClock`]), hammers it, and
//! checks the oracle invariants after every operation:
//!
//! * **I1 — read agreement**: after every op, a direct `GetRegistry`
//!   must agree exactly with the reference model built from the
//!   acknowledged-op journal (no ghost rows, no lost rows, attribute
//!   agreement).
//! * **I2 — durability**: crash-restart (drop the stack, reopen the same
//!   data directory) must preserve exactly the acknowledged state.
//! * **I3 — RCU generations**: search/recommendation snapshot
//!   generations never go backwards within a server lifetime.
//! * **I4 — read determinism**: issuing the same search/describe twice
//!   in a row returns bit-identical responses (the query cache must
//!   never change an answer).
//! * **I5 — typed failure**: every client-visible failure is a typed
//!   error (`Server`/`Connection`), never `UnexpectedResponse`, and a
//!   degraded server rejects mutations with the typed `Degraded` error
//!   — it never silently applies or hangs.
//! * **I6 — run determinism**: a clean run's output matches a shadow
//!   re-execution of the same request on a fault-free path (sorted
//!   lines, verdict, dead-letter count).
//!
//! Every deployment in an episode shares the episode's data directory,
//! so crash-restart cycles exercise WAL replay and snapshot recovery
//! under whatever the disk-fault plane did to the files.

use crate::model::SimModel;
use crate::netfault::{CallOutcome, CallRecord, FaultyConn, NetState};
use crate::rng::SimRng;
use crate::workload::{SimOp, Workload};
use laminar_client::{ClientError, LaminarClient, RetryPolicy};
use laminar_core::{Laminar, LaminarConfig};
use laminar_registry::{FaultKind, FaultMode, FaultSpec, IoSite, SNAPSHOT_FILE, WAL_FILE};
use laminar_server::protocol::{
    EmbeddingType, PeInfo, Reply, Request, Response, RunInputWire, WireFrame, WorkflowInfo,
};
use laminar_server::{
    Clock, ConnectionError, DeliveryMode, LaminarServer, ServerConfig, SharedClock, SimClock,
    Transport,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Deliberate model-breaking mutations, used to prove the oracle fires
/// (`--mutate`): a harness that never finds anything is indistinguishable
/// from one that checks nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Delete the WAL and snapshot before the final restart: every
    /// acknowledged row is lost, which I2 must report.
    LoseWal,
}

#[derive(Debug, Clone)]
pub struct SimOptions {
    pub seed: u64,
    pub episodes: u32,
    pub ops_per_episode: u32,
    pub mutate: Option<Mutation>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seed: 1,
            episodes: 3,
            ops_per_episode: 40,
            mutate: None,
        }
    }
}

#[derive(Debug)]
pub struct SimReport {
    /// Deterministic event trace (no wall-clock values): two runs with
    /// the same seed produce identical traces, byte for byte.
    pub trace: Vec<String>,
    /// FNV-1a digest of the trace.
    pub digest: u64,
    /// Oracle violations, in discovery order. Empty means the run passed.
    pub violations: Vec<String>,
    pub episodes_run: u32,
    pub ops_run: u64,
}

impl SimReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// FNV-1a over the trace lines.
fn fnv64(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Registry source of the chaos workflow (registered with no member PEs;
/// the engine side comes from a library builder).
const CHAOS_WF_SOURCE: &str = "\
class ChaosMid(IterativePE):
    def _process(self, x):
        return x
";

/// The chaos workflow: a 3-stage pipeline whose middle PE panics on a
/// seeded fraction of datums, recovering after `fail_attempts` retries.
/// Chaos fate is keyed by datum content, so every run with the same
/// input and seed fails identically — the property I6 leans on.
fn chaos_graph(seed: u64) -> d4py::WorkflowGraph {
    use d4py::prelude::*;
    let mut g = WorkflowGraph::new("chaos_wf");
    let src = g.add(ProducerPE::new("ChaosSrc", |i| Some(Data::from(i as i64))));
    let mid = g.add(IterativePE::new("ChaosMid", |d: Data| Some(d)));
    let sink = g.add(ConsumerPE::new(
        "ChaosOut",
        |d: Data, ctx: &mut Context<'_>| ctx.log(format!("{d}")),
    ));
    g.connect(src, OUTPUT, mid, INPUT).unwrap();
    g.connect(mid, OUTPUT, sink, INPUT).unwrap();
    inject_chaos(
        &mut g,
        mid,
        ChaosConfig {
            seed,
            panic_rate: 0.25,
            fail_attempts: 2,
            ..ChaosConfig::default()
        },
    );
    g
}

/// One deployed stack (fresh per server lifetime within an episode).
struct Stack {
    laminar: Laminar,
    server: Arc<LaminarServer>,
    client: LaminarClient,
    net: Arc<NetState>,
    shadow_token: u64,
}

/// Everything one episode tracks across ops and restarts.
struct Episode<'a> {
    opts: &'a SimOptions,
    dir: PathBuf,
    /// Disk-fault spec for this episode (the injector deploys cleared;
    /// the schedule arms and clears it around fault windows).
    spec: FaultSpec,
    ctl: SimRng,
    workload: Workload,
    chaos_seed: u64,
    stack: Option<Stack>,
    model: SimModel,
    /// Last storage-health truth observed via a direct Health probe.
    degraded: bool,
    /// Disk faults have been armed since the last successful probe; while
    /// true, silent health flips (e.g. from a run's best-effort history
    /// write) are legitimate.
    exposure: bool,
    armed: bool,
    disarm_in: u32,
    /// Last observed (search, reco) index generations (I3).
    gens: (u64, u64),
    trace: Vec<String>,
    violations: Vec<String>,
    ops_run: u64,
}

pub fn run_sim(opts: &SimOptions) -> SimReport {
    let mut root = SimRng::new(opts.seed);
    let base = std::env::temp_dir().join(format!(
        "laminar-sim-{}-{}",
        std::process::id(),
        opts.seed
    ));
    let _ = std::fs::remove_dir_all(&base);
    let mut trace = Vec::new();
    let mut violations = Vec::new();
    let mut ops_run = 0u64;
    let mut episodes_run = 0u32;
    for ep_idx in 0..opts.episodes {
        episodes_run += 1;
        trace.push(format!("=== episode {ep_idx} ==="));
        let ep_rng = root.fork(u64::from(ep_idx) + 1);
        let dir = base.join(format!("ep{ep_idx}"));
        run_episode(opts, ep_rng, &dir, &mut trace, &mut violations, &mut ops_run);
        if !violations.is_empty() {
            break;
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    let digest = fnv64(&trace);
    SimReport {
        trace,
        digest,
        violations,
        episodes_run,
        ops_run,
    }
}

fn pick_spec(rng: &mut SimRng) -> FaultSpec {
    let site = *rng.pick(&[
        IoSite::WalAppend,
        IoSite::WalBatchAppend,
        IoSite::WalFsync,
        IoSite::WalTruncate,
        IoSite::SnapshotWrite,
        IoSite::SnapshotFsync,
        IoSite::SnapshotRename,
    ]);
    let kind = *rng.pick(&[FaultKind::Enospc, FaultKind::ShortWrite, FaultKind::FsyncError]);
    let mode = if rng.chance(50) {
        FaultMode::Random(20 + rng.below(40) as u32)
    } else {
        FaultMode::From(1 + rng.below(3))
    };
    FaultSpec {
        sites: vec![site],
        mode,
        kind,
        short_cut: None,
    }
}

fn run_episode(
    opts: &SimOptions,
    mut ep_rng: SimRng,
    dir: &Path,
    trace: &mut Vec<String>,
    violations: &mut Vec<String>,
    ops_run: &mut u64,
) {
    let spec = pick_spec(&mut ep_rng);
    let mut ep = Episode {
        opts,
        dir: dir.to_path_buf(),
        spec,
        chaos_seed: ep_rng.next_u64(),
        workload: Workload::new(ep_rng.fork(101)),
        ctl: ep_rng.fork(102),
        stack: None,
        model: SimModel::new(),
        degraded: false,
        exposure: false,
        armed: false,
        disarm_in: 0,
        gens: (0, 0),
        trace: Vec::new(),
        violations: Vec::new(),
        ops_run: 0,
    };
    ep.trace.push(format!("fault-spec {:?}", ep.spec));
    ep.run();
    trace.append(&mut ep.trace);
    violations.append(&mut ep.violations);
    *ops_run += ep.ops_run;
}

impl Episode<'_> {
    fn violation(&mut self, msg: String) {
        self.trace.push(format!("VIOLATION: {msg}"));
        self.violations.push(msg);
    }

    fn stack(&self) -> &Stack {
        self.stack.as_ref().expect("stack deployed")
    }

    // ---- deployment -----------------------------------------------------

    fn deploy_stack(&mut self, first: bool) -> Result<(), String> {
        let clock: Arc<SimClock> = Arc::new(SimClock::new());
        let shared_clock: SharedClock = clock.clone();
        let net_seed = self.ctl.next_u64();
        let inj_seed = self.ctl.next_u64();
        let config = LaminarConfig {
            max_containers: 4,
            cold_start: Duration::ZERO,
            prewarmed: 1,
            server: ServerConfig {
                query_cache_entries: 64,
                quantized: true,
                probe_interval_ms: 0,
                degraded_retry_after_ms: 1,
                ..ServerConfig::default()
            },
            data_dir: Some(self.dir.clone()),
            snapshot_every: 0,
            wal_fsync: false,
            io_fault: Some(self.spec.clone()),
            io_fault_seed: inj_seed,
            clock: Some(shared_clock.clone()),
            ..LaminarConfig::default()
        };
        let laminar = Laminar::try_deploy(config).map_err(|e| format!("deploy failed: {e}"))?;
        // The injector deploys cleared; fault windows arm it explicitly.
        if let Some(inj) = laminar.fault_injector() {
            inj.clear();
        }
        let server = laminar.server();
        let chaos_seed = self.chaos_seed;
        server
            .engine()
            .library()
            .register("chaos_wf", move || chaos_graph(chaos_seed));
        let net = NetState::new(net_seed);
        let transport = Transport::new(server.clone(), DeliveryMode::Streaming)
            .with_clock(shared_clock);
        let sleeper_clock = clock.clone();
        let client = LaminarClient::over(FaultyConn::new(transport, net.clone()))
            .with_retry(RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::ZERO,
                max_delay: Duration::ZERO,
            })
            .with_sleeper(Arc::new(move |d| sleeper_clock.sleep(d)));
        let mut stack = Stack {
            laminar,
            server,
            client,
            net,
            shadow_token: 0,
        };
        if first {
            stack
                .laminar
                .seed_stock_registry()
                .map_err(|e| format!("stock seeding failed: {e}"))?;
        }
        // Shadow session: direct server access, bypassing the fault plane.
        stack.shadow_token = match stack
            .server
            .handle(Request::Login {
                username: "stock".into(),
                password: "stock".into(),
            })
            .value()
        {
            Response::Token(t) => t,
            other => return Err(format!("stock login failed: {other:?}")),
        };
        stack
            .client
            .login("stock", "stock")
            .map_err(|e| format!("client login failed: {e}"))?;
        // Auth is not modelled; drop its journal records.
        let _ = stack.net.drain_journal();
        self.gens = (
            stack.server.indexes().generation(),
            stack.server.reco().generation(),
        );
        self.degraded = false;
        self.exposure = false;
        self.armed = false;
        self.disarm_in = 0;
        self.stack = Some(stack);
        Ok(())
    }

    /// Register the chaos workflow's registry row through the shadow
    /// path, folding the outcome into the model. Duplicate errors mean
    /// it already survived on disk — a no-op.
    fn ensure_chaos_row(&mut self) {
        let req = Request::RegisterWorkflow {
            token: self.stack().shadow_token,
            name: "chaos_wf".into(),
            code: CHAOS_WF_SOURCE.into(),
            description: Some("chaos injection workflow".into()),
            pes: vec![],
        };
        let resp = self.stack().server.handle(req.clone()).value();
        match &resp {
            Response::Registered { .. } => {
                let rec = CallRecord {
                    seq: 0,
                    fault: None,
                    req,
                    outcome: CallOutcome::Value(resp.clone()),
                };
                for v in self.model.apply(&rec) {
                    self.violation(v);
                }
            }
            Response::Error(_) => {} // already present
            other => self.violation(format!("chaos_wf registration answered {other:?}")),
        }
    }

    // ---- shadow observations (direct, fault-free) -----------------------

    fn shadow_registry(&mut self) -> Option<(Vec<PeInfo>, Vec<WorkflowInfo>)> {
        let token = self.stack().shadow_token;
        match self
            .stack()
            .server
            .handle(Request::GetRegistry { token })
            .value()
        {
            Response::Registry { pes, workflows } => Some((pes, workflows)),
            other => {
                self.violation(format!("shadow GetRegistry answered {other:?}"));
                None
            }
        }
    }

    /// Direct health probe: returns the server's readiness truth. I5's
    /// "never hangs" is implicit — this is a synchronous in-process call.
    fn shadow_degraded(&mut self) -> bool {
        match self.stack().server.handle(Request::Health {}).value() {
            Response::Health { live, ready, .. } => {
                if !live {
                    self.violation("health reports live=false on a serving server".into());
                }
                !ready
            }
            other => {
                self.violation(format!("Health answered {other:?}"));
                self.degraded
            }
        }
    }

    /// I1/I2: full read must agree with the model.
    fn check_full_state(&mut self, context: &str) {
        let Some((pes, wfs)) = self.shadow_registry() else {
            return;
        };
        for v in self.model.check_registry(&pes, &wfs) {
            self.violation(format!("{context}: {v}"));
        }
    }

    /// I3: index generations are monotone within a server lifetime.
    fn check_generations(&mut self) {
        let g = (
            self.stack().server.indexes().generation(),
            self.stack().server.reco().generation(),
        );
        if g.0 < self.gens.0 {
            self.violation(format!(
                "search index generation went backwards: {} -> {}",
                self.gens.0, g.0
            ));
        }
        if g.1 < self.gens.1 {
            self.violation(format!(
                "reco index generation went backwards: {} -> {}",
                self.gens.1, g.1
            ));
        }
        self.gens = g;
    }

    /// I4: a repeated read answers bit-identically (cache hits must
    /// match their uncached answers).
    fn check_double_read(&mut self, req: Request, what: &str) {
        let a = self.stack().server.handle(req.clone()).value();
        let b = self.stack().server.handle(req).value();
        if a != b {
            self.violation(format!("repeated {what} answered differently: cache served a different answer than the uncached read"));
        }
    }

    /// Health transition bookkeeping: degraded may only begin while the
    /// disk-fault plane is armed (or was, since the last good probe),
    /// and may only end through an explicit probe.
    fn observe_health(&mut self, context: &str) {
        let now = self.shadow_degraded();
        if now && !self.degraded && !self.exposure {
            self.violation(format!(
                "{context}: server entered degraded mode with no disk fault armed"
            ));
        }
        if !now && self.degraded {
            self.violation(format!(
                "{context}: server left degraded mode without a probe"
            ));
        }
        self.degraded = now;
    }

    // ---- fault-plane scheduling -----------------------------------------

    fn maybe_toggle_faults(&mut self) {
        // Transport plane: shift the fault probability now and then.
        if self.ctl.chance(6) {
            let p = *self.ctl.pick(&[0u32, 0, 15, 35]);
            self.stack().net.set_percent(p);
            self.trace.push(format!("net-faults {p}%"));
        }
        // Disk plane: arm for a window of ops, then clear + probe.
        if self.armed {
            self.disarm_in = self.disarm_in.saturating_sub(1);
            if self.disarm_in == 0 {
                self.disarm_and_probe();
            }
        } else if self.ctl.chance(8) {
            if let Some(inj) = self.stack().laminar.fault_injector() {
                inj.arm();
                self.armed = true;
                self.exposure = true;
                self.disarm_in = 2 + self.ctl.below(6) as u32;
                self.trace.push("disk-faults armed".into());
            }
        }
    }

    fn disarm_and_probe(&mut self) {
        if let Some(inj) = self.stack().laminar.fault_injector() {
            inj.clear();
        }
        self.armed = false;
        // With the fault cleared, a probe must restore the server: the
        // underlying directory is healthy.
        let still_degraded = self.stack().server.probe_storage();
        if still_degraded {
            self.violation("probe failed to recover a server whose disk fault was cleared".into());
        }
        self.degraded = false;
        self.exposure = false;
        self.trace.push("disk-faults cleared, probe ok".into());
    }

    // ---- crash-restart ---------------------------------------------------

    fn crash_restart(&mut self, mutate: bool) -> bool {
        // Fold any straggler journal records, then drop the whole stack:
        // no graceful shutdown, exactly like a crash (the WAL's
        // append-before-acknowledge discipline is what's under test).
        self.drain_and_apply();
        self.stack = None;
        if mutate {
            let _ = std::fs::remove_file(self.dir.join(WAL_FILE));
            let _ = std::fs::remove_file(self.dir.join(SNAPSHOT_FILE));
            self.trace.push("mutate: wal+snapshot deleted".into());
        }
        self.trace.push("crash-restart".into());
        if let Err(e) = self.deploy_stack(false) {
            self.violation(format!("reopen after crash failed: {e}"));
            return false;
        }
        // I2: everything acknowledged before the crash must still be
        // there — and nothing unacknowledged may have materialised.
        self.check_full_state("after crash-restart");
        self.ensure_chaos_row();
        true
    }

    // ---- journal/model plumbing -----------------------------------------

    fn drain_and_apply(&mut self) -> Vec<CallRecord> {
        let records = self.stack().net.drain_journal();
        for rec in &records {
            for v in self.model.apply(rec) {
                self.violation(v);
            }
        }
        records
    }

    // ---- the episode loop ------------------------------------------------

    fn run(&mut self) {
        if let Err(e) = self.deploy_stack(true) {
            self.violation(format!("initial deployment failed: {e}"));
            return;
        }
        self.ensure_chaos_row();
        match self.shadow_registry() {
            Some((pes, wfs)) => self.model.bootstrap(&pes, &wfs),
            None => return,
        }
        self.trace.push(format!(
            "bootstrapped: {} pes, {} wfs",
            self.model.pes.len(),
            self.model.wfs.len()
        ));

        for i in 0..self.opts.ops_per_episode {
            if !self.violations.is_empty() {
                return; // stop at first violation: the trace up to here replays it
            }
            self.maybe_toggle_faults();
            if self.ctl.chance(4) && !self.crash_restart(false) {
                return;
            }
            let op = self.workload.next_op(&self.model);
            self.execute_op(i, &op);
            self.ops_run += 1;
        }

        // Episode teardown: settle the disk plane, then one final
        // crash-restart (optionally mutated) and durability check.
        if self.armed {
            self.disarm_and_probe();
        }
        let mutate = self.opts.mutate.is_some();
        if self.crash_restart(mutate) {
            self.check_full_state("final restart");
        }
        self.stack = None;
        self.trace.push(format!("episode done: ops={}", self.ops_run));
    }

    // ---- op execution + per-op oracle checks ----------------------------

    fn execute_op(&mut self, idx: u32, op: &SimOp) {
        let prev_degraded = self.degraded;
        let (summary, unexpected) = self.dispatch(op);
        let records = self.drain_and_apply();
        let clean = records
            .last()
            .map(|r| r.fault.is_none())
            .unwrap_or(false);
        let fault_names: Vec<&str> = records
            .iter()
            .filter_map(|r| r.fault.map(|f| f.name()))
            .collect();
        let note = if fault_names.is_empty() {
            String::new()
        } else {
            format!(" [{}]", fault_names.join(","))
        };
        self.trace
            .push(format!("op{idx} {}{note} -> {summary}", op.label()));

        // I5: typed failure, never UnexpectedResponse.
        if let Some(msg) = unexpected {
            self.violation(format!("untyped client failure on {}: {msg}", op.label()));
        }

        // I5: a degraded server must reject clean mutations, typed; a
        // healthy, un-faulted server must not reject them as degraded.
        if clean && op.is_mutation() {
            let last = records.last().expect("clean implies a record");
            let rejected_degraded = matches!(
                last.outcome,
                CallOutcome::Rejected(ConnectionError::Degraded { .. })
            );
            let acked_ok = matches!(
                &last.outcome,
                CallOutcome::Value(
                    Response::Ok
                        | Response::Registered { .. }
                        | Response::BatchRegistered { .. }
                        | Response::Compacted { .. }
                )
            );
            if prev_degraded && acked_ok {
                self.violation(format!(
                    "degraded server applied mutation {}",
                    op.label()
                ));
            }
            if !prev_degraded && !self.exposure && rejected_degraded {
                self.violation(format!(
                    "healthy server rejected {} as degraded",
                    op.label()
                ));
            }
            // Strict success expectations where the op cannot
            // legitimately fail on a healthy, un-faulted server.
            if !prev_degraded && !self.exposure && clean {
                let must_succeed = matches!(
                    op,
                    SimOp::RegisterPe { .. } | SimOp::RemoveAll | SimOp::Compact
                );
                if must_succeed && !acked_ok {
                    self.violation(format!(
                        "{} failed on a healthy server: {summary}",
                        op.label()
                    ));
                }
            }
        }

        // Per-op extras.
        self.op_specific_checks(op, &records, clean);

        // I4: repeated reads are bit-identical (exercises the query
        // cache on both the populate and hit paths).
        let token = self.stack().shadow_token;
        match op {
            SimOp::SearchSemantic { scope, query } => self.check_double_read(
                Request::SearchSemantic {
                    token,
                    scope: *scope,
                    query: query.clone(),
                    top_n: None,
                },
                "semantic search",
            ),
            SimOp::SearchLiteral { scope, term } => self.check_double_read(
                Request::SearchLiteral {
                    token,
                    scope: *scope,
                    term: term.clone(),
                    top_n: None,
                },
                "literal search",
            ),
            SimOp::Recommend { snippet } => self.check_double_read(
                Request::CodeRecommendation {
                    token,
                    scope: laminar_server::protocol::SearchScope::Both,
                    snippet: snippet.clone(),
                    embedding_type: EmbeddingType::Spt,
                    top_n: None,
                },
                "code recommendation",
            ),
            _ => {}
        }

        // I3 after every op; I1 after every op.
        self.check_generations();
        self.check_full_state("after op");
        self.observe_health("after op");
    }

    /// Execute the op through the (faulty) client; returns a
    /// deterministic outcome summary and, when the failure was untyped,
    /// the offending message.
    fn dispatch(&mut self, op: &SimOp) -> (String, Option<String>) {
        fn done<T>(r: Result<T, ClientError>, show: impl Fn(&T) -> String) -> (String, Option<String>) {
            match r {
                Ok(v) => (format!("ok: {}", show(&v)), None),
                Err(ClientError::UnexpectedResponse(m)) => {
                    (format!("err: unexpected response: {m}"), Some(m))
                }
                Err(ClientError::NotLoggedIn) => {
                    ("err: not logged in".into(), Some("not logged in".into()))
                }
                Err(e) => (format!("err: {e}"), None),
            }
        }
        let c = &self.stack.as_ref().expect("stack").client;
        match op {
            SimOp::RegisterPe { sub } => done(
                c.register_pe(&sub.name, &sub.code, sub.description.as_deref()),
                |id| format!("#{id}"),
            ),
            SimOp::RegisterWorkflow { name, source } => done(
                c.register_workflow(name, source),
                |r| format!("#{} pes={}", r.workflow.1, r.pes.len()),
            ),
            SimOp::RegisterBatch { items } => done(c.register_batch(items.clone()), |outs| {
                format!("outcomes={}", outs.len())
            }),
            SimOp::GetPe { ident } => done(c.get_pe(ident.clone()), |p| {
                format!("{}#{}", p.name, p.id)
            }),
            SimOp::GetWorkflow { ident } => done(c.get_workflow(ident.clone()), |w| {
                format!("{}#{} members={}", w.name, w.id, w.pe_ids.len())
            }),
            SimOp::GetPesByWorkflow { ident } => {
                done(c.get_pes_by_workflow(ident.clone()), |ps| {
                    format!("n={}", ps.len())
                })
            }
            SimOp::GetRegistry => done(c.get_registry(), |(ps, ws)| {
                format!("pes={} wfs={}", ps.len(), ws.len())
            }),
            SimOp::Describe { ident } => done(
                c.describe(laminar_server::protocol::SearchScope::Pe, ident.clone()),
                |d| format!("len={}", d.len()),
            ),
            SimOp::UpdatePeDescription { ident, description } => done(
                c.update_pe_description(ident.clone(), description),
                |_| "updated".into(),
            ),
            SimOp::RemovePe { ident } => done(c.remove_pe(ident.clone()), |_| "removed".into()),
            SimOp::RemoveWorkflow { ident } => {
                done(c.remove_workflow(ident.clone()), |_| "removed".into())
            }
            SimOp::RemoveAll => done(c.remove_all(), |_| "cleared".into()),
            SimOp::SearchLiteral { scope, term } => {
                done(c.search_registry_literal(*scope, term), |(ps, ws)| {
                    format!("pes={} wfs={}", ps.len(), ws.len())
                })
            }
            SimOp::SearchSemantic { scope, query } => {
                done(c.search_registry_semantic(*scope, query), |hits| {
                    let names: Vec<&str> = hits.iter().map(|h| h.name.as_str()).collect();
                    format!("[{}]", names.join(","))
                })
            }
            SimOp::Recommend { snippet } => done(
                c.code_recommendation(
                    laminar_server::protocol::SearchScope::Both,
                    snippet,
                    EmbeddingType::Spt,
                ),
                |hits| format!("n={}", hits.len()),
            ),
            SimOp::Complete { snippet } => done(c.code_completion(snippet), |(src, lines, _)| {
                format!(
                    "src={} lines={}",
                    src.as_ref().map(|(_, n)| n.as_str()).unwrap_or("-"),
                    lines.len()
                )
            }),
            SimOp::Run {
                ident,
                iterations,
                mode,
                fault,
            } => done(
                c.run_custom_faults(
                    ident.clone(),
                    RunInputWire::Iterations(*iterations),
                    mode.clone(),
                    false,
                    fault.clone(),
                    None,
                ),
                |out| {
                    format!(
                        "lines={} ok={} dead={}",
                        out.lines.len(),
                        out.ok,
                        out.dead_letters.len()
                    )
                },
            ),
            SimOp::GetExecutions { ident } => done(c.get_executions(ident.clone()), |rows| {
                format!("n={}", rows.len())
            }),
            SimOp::Compact => done(c.compact(), |r| format!("folded={}", r.wal_records)),
            SimOp::Health => done(c.health(), |h| format!("ready={}", h.ready)),
            SimOp::Metrics => done(c.metrics(), |_| "snapshot".into()),
        }
    }

    fn op_specific_checks(&mut self, op: &SimOp, records: &[CallRecord], clean: bool) {
        match op {
            // I6: a clean sequential/static run must reproduce exactly on
            // a shadow re-execution of the same request.
            SimOp::Run {
                ident,
                iterations,
                mode,
                fault,
            } => {
                // I6 applies to sequential runs only: a multiprocess run
                // that FailFasts mid-chaos can legitimately emit a
                // different prefix of lines depending on worker
                // interleaving. Sequential runs (chaos included — fates
                // are keyed by datum content) must be bit-stable.
                if !clean || !matches!(mode, laminar_server::protocol::RunMode::Sequential) {
                    return;
                }
                let shadow_a = self.shadow_run(ident, *iterations, mode, fault);
                let shadow_b = self.shadow_run(ident, *iterations, mode, fault);
                if shadow_a != shadow_b {
                    self.violation(format!(
                        "run {} is nondeterministic: two identical executions diverged ({shadow_a:?} vs {shadow_b:?})",
                        op.label()
                    ));
                }
            }
            // Clean health answers must match the truth the shadow probe
            // sees (same single-threaded instant — no races possible).
            SimOp::Health => {
                if clean {
                    if let Some(CallRecord {
                        outcome: CallOutcome::Value(Response::Health { ready, .. }),
                        ..
                    }) = records.last()
                    {
                        let truth = !self.shadow_degraded();
                        if *ready != truth {
                            self.violation(format!(
                                "health reported ready={ready} but a direct probe sees ready={truth}"
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Execute a run directly against the server (no transport, no net
    /// faults) and reduce it to a comparable shape: sorted output lines,
    /// verdict, dead-letter count, error text.
    fn shadow_run(
        &mut self,
        ident: &laminar_server::protocol::Ident,
        iterations: u64,
        mode: &laminar_server::protocol::RunMode,
        fault: &laminar_server::protocol::FaultPolicyWire,
    ) -> (Vec<String>, bool, usize, Option<String>) {
        let req = Request::Run {
            token: self.stack().shadow_token,
            ident: ident.clone(),
            input: RunInputWire::Iterations(iterations),
            mode: mode.clone(),
            streaming: true,
            verbose: false,
            resources: vec![],
            fault: fault.clone(),
            task_timeout_ms: None,
        };
        match self.stack().server.handle(req) {
            Reply::Value(Response::Error(e)) => (Vec::new(), false, 0, Some(e)),
            Reply::Value(other) => (
                Vec::new(),
                false,
                0,
                Some(format!("unexpected value reply {other:?}")),
            ),
            Reply::Stream(rx) => {
                let mut lines = Vec::new();
                let mut dead = 0usize;
                let mut ok = false;
                let mut err = None;
                for frame in rx.iter() {
                    match frame {
                        WireFrame::Line(l) => lines.push(l),
                        WireFrame::DeadLetter(_) => dead += 1,
                        WireFrame::Value(Response::Error(e)) => {
                            err = Some(e);
                            break;
                        }
                        WireFrame::End { ok: o, .. } => {
                            ok = o;
                            break;
                        }
                        _ => {}
                    }
                }
                lines.sort();
                (lines, ok, dead, err)
            }
        }
    }
}
