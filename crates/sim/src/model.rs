//! The reference model: a plain-HashMap interpreter of the acknowledged
//! operation history.
//!
//! The model consumes the omniscient journal the network-fault wrapper
//! keeps ([`CallRecord`](crate::netfault::CallRecord)) — every attempt
//! that actually reached the server, with the server's true response,
//! including responses the client never saw because the reply was lost.
//! From that it maintains what the registry MUST contain:
//!
//! * an acknowledged mutation (`Registered`/`Ok` in the journal) is
//!   **Present**: it must appear in every subsequent read and must
//!   survive crash-restart;
//! * a rejected mutation (`Error` in the journal) leaves **no trace** —
//!   with one documented exception: a failed `RegisterWorkflow` may have
//!   committed member PEs before the workflow row failed (the server's
//!   partial-progress contract), so those members become **Maybe**;
//! * a **Maybe** row is resolved by the next full read: if the server
//!   shows it, it is promoted to Present (and its attributes learned);
//!   if not, it is erased. Either way the ambiguity never outlives one
//!   observation.
//!
//! [`SimModel::check_registry`] is the oracle's workhorse: given a full
//! `GetRegistry` answer it demands exact agreement — no ghost rows the
//! model never acknowledged, no lost rows the model knows were
//! acknowledged, and attribute-level agreement (id, code, description,
//! workflow membership) for everything whose value the model knows.

use crate::netfault::{CallOutcome, CallRecord};
use laminar_server::protocol::{
    BatchItemWire, BatchOutcomeWire, Ident, PeInfo, PeSubmission, Request, Response, WorkflowInfo,
};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Presence {
    /// Acknowledged: must be on the server.
    Present,
    /// Possibly committed (member of a failed workflow registration, or
    /// written under an ambiguous ack): resolved by the next full read.
    Maybe,
}

/// What the model knows about one PE row. `None` fields are unknown
/// (e.g. an auto-generated description the model has not read yet);
/// known fields must match the server bit-for-bit.
#[derive(Debug, Clone)]
pub struct PeModel {
    pub presence: Presence,
    pub id: Option<u64>,
    pub code: Option<String>,
    pub desc: Option<String>,
}

#[derive(Debug, Clone)]
pub struct WfModel {
    pub presence: Presence,
    pub id: Option<u64>,
    pub code: Option<String>,
    pub desc: Option<String>,
    /// Member PE ids (order-insensitive), when known.
    pub member_ids: Option<Vec<u64>>,
}

/// The reference registry state, keyed by name (the workload never
/// varies case, so exact-name keys match the server's case-insensitive
/// uniqueness rule).
#[derive(Debug, Default)]
pub struct SimModel {
    pub pes: BTreeMap<String, PeModel>,
    pub wfs: BTreeMap<String, WfModel>,
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

impl SimModel {
    pub fn new() -> SimModel {
        SimModel::default()
    }

    /// Load the model exactly from an authoritative full read (used once
    /// per deployment, right after seeding, before any faults).
    pub fn bootstrap(&mut self, pes: &[PeInfo], wfs: &[WorkflowInfo]) {
        self.pes.clear();
        self.wfs.clear();
        for p in pes {
            self.pes.insert(
                p.name.clone(),
                PeModel {
                    presence: Presence::Present,
                    id: Some(p.id),
                    code: Some(p.code.clone()),
                    desc: Some(p.description.clone()),
                },
            );
        }
        for w in wfs {
            self.wfs.insert(
                w.name.clone(),
                WfModel {
                    presence: Presence::Present,
                    id: Some(w.id),
                    code: Some(w.code.clone()),
                    desc: Some(w.description.clone()),
                    member_ids: Some(w.pe_ids.clone()),
                },
            );
        }
    }

    /// A PE registration committed under `name` with `id`. On a fresh
    /// row the submission's attributes are adopted; on an existing row
    /// this is the server's duplicate-reuse path — attributes stay
    /// whatever the first registration stored.
    fn learn_pe_commit(
        &mut self,
        name: &str,
        id: u64,
        sub: Option<&PeSubmission>,
        v: &mut Vec<String>,
    ) {
        match self.pes.get_mut(name) {
            Some(row) => {
                match row.id {
                    Some(old) if old != id => v.push(format!(
                        "pe '{name}' changed id {old} -> {id}: an acknowledged row was lost and re-created"
                    )),
                    _ => row.id = Some(id),
                }
                if row.presence == Presence::Maybe {
                    // The Maybe row's attributes came from a submission
                    // that may or may not be the one that committed; a
                    // differing re-submission makes them unknowable
                    // until the next read.
                    if let Some(sub) = sub {
                        if row.code.as_deref() != Some(sub.code.as_str()) {
                            row.code = None;
                        }
                        if row.desc.is_some() && row.desc != sub.description {
                            row.desc = None;
                        }
                    }
                    row.presence = Presence::Present;
                }
                // Present row: duplicate reuse, attributes unchanged.
            }
            None => {
                self.pes.insert(
                    name.to_string(),
                    PeModel {
                        presence: Presence::Present,
                        id: Some(id),
                        code: sub.map(|s| s.code.clone()),
                        desc: sub.and_then(|s| {
                            s.description.as_ref().filter(|d| !d.is_empty()).cloned()
                        }),
                    },
                );
            }
        }
    }

    fn learn_wf_commit(
        &mut self,
        name: &str,
        id: u64,
        code: &str,
        desc: Option<&str>,
        member_ids: Vec<u64>,
        v: &mut Vec<String>,
    ) {
        match self.wfs.get_mut(name) {
            Some(row) => {
                match row.id {
                    Some(old) if old != id => v.push(format!(
                        "workflow '{name}' changed id {old} -> {id}: an acknowledged row was lost and re-created"
                    )),
                    _ => row.id = Some(id),
                }
                if row.presence == Presence::Maybe {
                    if row.code.as_deref() != Some(code) {
                        row.code = None;
                    }
                    if row.desc.is_some() && row.desc.as_deref() != desc {
                        row.desc = None;
                    }
                    row.member_ids = Some(member_ids);
                    row.presence = Presence::Present;
                } else {
                    // A committed registration for an already-Present
                    // workflow name cannot happen (duplicates error);
                    // seeing one means the acknowledged row vanished.
                    v.push(format!(
                        "workflow '{name}' re-registered while acknowledged as present"
                    ));
                }
            }
            None => {
                self.wfs.insert(
                    name.to_string(),
                    WfModel {
                        presence: Presence::Present,
                        id: Some(id),
                        code: Some(code.to_string()),
                        desc: desc.filter(|d| !d.is_empty()).map(str::to_string),
                        member_ids: Some(member_ids),
                    },
                );
            }
        }
    }

    /// A workflow registration was acknowledged as failed: its member
    /// PEs may have committed before the failure (partial progress).
    fn mark_members_maybe(&mut self, subs: &[PeSubmission]) {
        for sub in subs {
            self.pes.entry(sub.name.clone()).or_insert_with(|| PeModel {
                presence: Presence::Maybe,
                id: None,
                code: Some(sub.code.clone()),
                desc: sub.description.as_ref().filter(|d| !d.is_empty()).cloned(),
            });
            // Already-known rows keep their state: a Present row is a
            // duplicate-reuse no-op, a Maybe row stays Maybe.
        }
    }

    /// Resolve an ident to the model's key for it, without borrowing
    /// mutably (callers re-index afterwards — keeps borrows trivial).
    fn resolve_pe_name(&self, ident: &Ident) -> Option<String> {
        match ident {
            Ident::Name(n) => self.pes.contains_key(n).then(|| n.clone()),
            Ident::Id(id) => self
                .pes
                .iter()
                .find(|(_, r)| r.id == Some(*id))
                .map(|(n, _)| n.clone()),
        }
    }

    fn resolve_wf_name(&self, ident: &Ident) -> Option<String> {
        match ident {
            Ident::Name(n) => self.wfs.contains_key(n).then(|| n.clone()),
            Ident::Id(id) => self
                .wfs
                .iter()
                .find(|(_, r)| r.id == Some(*id))
                .map(|(n, _)| n.clone()),
        }
    }

    /// Fold one journalled attempt into the model. Returns any
    /// violations detected at apply time (id mutations, impossible
    /// acks); read-level violations come from the check methods.
    pub fn apply(&mut self, rec: &CallRecord) -> Vec<String> {
        let mut v = Vec::new();
        let resp = match &rec.outcome {
            // Never reached the server, or rejected before dispatch
            // (busy/degraded/version): no registry effect.
            CallOutcome::NotDelivered | CallOutcome::Rejected(_) => return v,
            // Streams are runs: they touch execution history (not
            // modelled), never the PE/workflow tables.
            CallOutcome::Stream | CallOutcome::StreamDrained { .. } => return v,
            CallOutcome::Value(resp) => resp,
        };
        match (&rec.req, resp) {
            (Request::RegisterPe { pe, .. }, Response::Registered { pe_ids, .. }) => {
                if let Some((name, id)) = pe_ids.first() {
                    self.learn_pe_commit(name, *id, Some(pe), &mut v);
                }
            }
            // A rejected RegisterPe is a single-row mutation: no trace.
            (Request::RegisterPe { .. }, Response::Error(_)) => {}
            (
                Request::RegisterWorkflow {
                    name,
                    code,
                    description,
                    pes,
                    ..
                },
                Response::Registered {
                    pe_ids,
                    workflow_id,
                },
            ) => {
                for (sub, (n, id)) in pes.iter().zip(pe_ids.iter()) {
                    self.learn_pe_commit(n, *id, Some(sub), &mut v);
                }
                if let Some((_, wid)) = workflow_id {
                    let members = pe_ids.iter().map(|(_, id)| *id).collect();
                    self.learn_wf_commit(name, *wid, code, description.as_deref(), members, &mut v);
                }
            }
            (Request::RegisterWorkflow { pes, .. }, Response::Error(_)) => {
                self.mark_members_maybe(pes);
            }
            (Request::RegisterBatch { items, .. }, Response::BatchRegistered { outcomes }) => {
                for (item, out) in items.iter().zip(outcomes.iter()) {
                    self.apply_batch_item(item, out, &mut v);
                }
            }
            // A batch-level Error is a group-commit WAL failure: the
            // whole frame was rejected, nothing committed.
            (Request::RegisterBatch { .. }, Response::Error(_)) => {}
            (Request::UpdatePeDescription { ident, description, .. }, Response::Ok) => {
                match self.resolve_pe_name(ident) {
                    Some(name) => {
                        let row = self.pes.get_mut(&name).expect("resolved");
                        row.presence = Presence::Present; // an acked update proves existence
                        row.desc = Some(description.clone());
                    }
                    None => v.push(format!(
                        "UpdatePeDescription({ident:?}) acknowledged but the model has no such pe"
                    )),
                }
            }
            (Request::UpdateWorkflowDescription { ident, description, .. }, Response::Ok) => {
                match self.resolve_wf_name(ident) {
                    Some(name) => {
                        let row = self.wfs.get_mut(&name).expect("resolved");
                        row.presence = Presence::Present;
                        row.desc = Some(description.clone());
                    }
                    None => v.push(format!(
                        "UpdateWorkflowDescription({ident:?}) acknowledged but the model has no such workflow"
                    )),
                }
            }
            (Request::RemovePe { ident, .. }, Response::Ok) => match self.resolve_pe_name(ident) {
                Some(name) => {
                    self.pes.remove(&name);
                }
                None => v.push(format!(
                    "RemovePe({ident:?}) acknowledged but the model has no such pe"
                )),
            },
            (Request::RemoveWorkflow { ident, .. }, Response::Ok) => {
                match self.resolve_wf_name(ident) {
                    Some(name) => {
                        self.wfs.remove(&name);
                    }
                    None => v.push(format!(
                        "RemoveWorkflow({ident:?}) acknowledged but the model has no such workflow"
                    )),
                }
            }
            (Request::RemoveAll { .. }, Response::Ok) => {
                self.pes.clear();
                self.wfs.clear();
            }
            // Rejected updates/removes leave no trace; reads change
            // nothing (they are checked, not applied).
            _ => {}
        }
        v
    }

    fn apply_batch_item(
        &mut self,
        item: &BatchItemWire,
        out: &BatchOutcomeWire,
        v: &mut Vec<String>,
    ) {
        match (item, out) {
            (BatchItemWire::Pe(sub), BatchOutcomeWire::Registered { pe_ids, .. }) => {
                if let Some((name, id)) = pe_ids.first() {
                    self.learn_pe_commit(name, *id, Some(sub), v);
                }
            }
            (
                BatchItemWire::Workflow {
                    name,
                    code,
                    description,
                    pes,
                },
                BatchOutcomeWire::Registered {
                    pe_ids,
                    workflow_id,
                },
            ) => {
                for (sub, (n, id)) in pes.iter().zip(pe_ids.iter()) {
                    self.learn_pe_commit(n, *id, Some(sub), v);
                }
                if let Some((_, wid)) = workflow_id {
                    let members = pe_ids.iter().map(|(_, id)| *id).collect();
                    self.learn_wf_commit(name, *wid, code, description.as_deref(), members, v);
                }
            }
            // A failed item explicitly lists the member PEs that did
            // commit before the failure — exact, not Maybe.
            (item, BatchOutcomeWire::Failed { pe_ids, .. }) => {
                let subs: &[PeSubmission] = match item {
                    BatchItemWire::Pe(sub) => std::slice::from_ref(sub),
                    BatchItemWire::Workflow { pes, .. } => pes,
                };
                for (name, id) in pe_ids {
                    let sub = subs.iter().find(|s| &s.name == name);
                    self.learn_pe_commit(name, *id, sub, v);
                }
            }
        }
    }

    /// The oracle's main check: a full registry read must agree exactly
    /// with the model. Resolves Maybe rows as a side effect.
    pub fn check_registry(&mut self, pes: &[PeInfo], wfs: &[WorkflowInfo]) -> Vec<String> {
        let mut v = Vec::new();
        let mut seen_pes = std::collections::BTreeSet::new();
        for info in pes {
            if !seen_pes.insert(info.name.clone()) {
                v.push(format!("registry lists pe '{}' twice", info.name));
            }
            match self.pes.get_mut(&info.name) {
                None => v.push(format!(
                    "ghost pe '{}' (id {}): on the server but never acknowledged",
                    info.name, info.id
                )),
                Some(row) => {
                    row.presence = Presence::Present;
                    match row.id {
                        None => row.id = Some(info.id),
                        Some(id) if id != info.id => v.push(format!(
                            "pe '{}' id mismatch: model {id}, server {}",
                            info.name, info.id
                        )),
                        _ => {}
                    }
                    match &row.code {
                        None => row.code = Some(info.code.clone()),
                        Some(c) if *c != info.code => v.push(format!(
                            "pe '{}' code mismatch: acknowledged code was replaced",
                            info.name
                        )),
                        _ => {}
                    }
                    match &row.desc {
                        None => row.desc = Some(info.description.clone()),
                        Some(d) if *d != info.description => v.push(format!(
                            "pe '{}' description mismatch: model {:?}, server {:?}",
                            info.name, d, info.description
                        )),
                        _ => {}
                    }
                }
            }
        }
        let names: Vec<String> = self.pes.keys().cloned().collect();
        for name in names {
            if !seen_pes.contains(&name) {
                match self.pes[&name].presence {
                    Presence::Present => {
                        v.push(format!(
                            "lost pe '{name}': acknowledged but missing from the registry"
                        ));
                        self.pes.remove(&name); // don't re-report every check
                    }
                    Presence::Maybe => {
                        // Resolved: the ambiguous write did not commit.
                        self.pes.remove(&name);
                    }
                }
            }
        }

        let mut seen_wfs = std::collections::BTreeSet::new();
        for info in wfs {
            if !seen_wfs.insert(info.name.clone()) {
                v.push(format!("registry lists workflow '{}' twice", info.name));
            }
            match self.wfs.get_mut(&info.name) {
                None => v.push(format!(
                    "ghost workflow '{}' (id {}): on the server but never acknowledged",
                    info.name, info.id
                )),
                Some(row) => {
                    row.presence = Presence::Present;
                    match row.id {
                        None => row.id = Some(info.id),
                        Some(id) if id != info.id => v.push(format!(
                            "workflow '{}' id mismatch: model {id}, server {}",
                            info.name, info.id
                        )),
                        _ => {}
                    }
                    match &row.code {
                        None => row.code = Some(info.code.clone()),
                        Some(c) if *c != info.code => v.push(format!(
                            "workflow '{}' code mismatch",
                            info.name
                        )),
                        _ => {}
                    }
                    match &row.desc {
                        None => row.desc = Some(info.description.clone()),
                        Some(d) if *d != info.description => v.push(format!(
                            "workflow '{}' description mismatch: model {:?}, server {:?}",
                            info.name, d, info.description
                        )),
                        _ => {}
                    }
                    match &row.member_ids {
                        None => row.member_ids = Some(info.pe_ids.clone()),
                        Some(ids) if sorted(ids.clone()) != sorted(info.pe_ids.clone()) => {
                            v.push(format!(
                                "workflow '{}' member mismatch: model {:?}, server {:?}",
                                info.name, ids, info.pe_ids
                            ))
                        }
                        _ => {}
                    }
                }
            }
        }
        let names: Vec<String> = self.wfs.keys().cloned().collect();
        for name in names {
            if !seen_wfs.contains(&name) {
                match self.wfs[&name].presence {
                    Presence::Present => {
                        v.push(format!(
                            "lost workflow '{name}': acknowledged but missing from the registry"
                        ));
                        self.wfs.remove(&name);
                    }
                    Presence::Maybe => {
                        self.wfs.remove(&name);
                    }
                }
            }
        }
        v
    }

    /// Check a clean client-visible `GetPe` answer against the model.
    pub fn check_get_pe(&mut self, ident: &Ident, got: Result<&PeInfo, &str>) -> Vec<String> {
        let mut v = Vec::new();
        let known = self.resolve_pe_name(ident);
        match (known, got) {
            (Some(name), Ok(info)) => {
                let row = self.pes.get_mut(&name).expect("resolved");
                row.presence = Presence::Present;
                if info.name != name {
                    v.push(format!(
                        "GetPe({ident:?}) returned '{}' but the model resolves it to '{name}'",
                        info.name
                    ));
                }
                match row.id {
                    None => row.id = Some(info.id),
                    Some(id) if id != info.id => v.push(format!(
                        "GetPe('{name}') id mismatch: model {id}, server {}",
                        info.id
                    )),
                    _ => {}
                }
                if let Some(code) = &row.code {
                    if *code != info.code {
                        v.push(format!("GetPe('{name}') code mismatch"));
                    }
                }
            }
            (Some(name), Err(_)) => match self.pes[&name].presence {
                Presence::Present => v.push(format!(
                    "GetPe('{name}') errored but the row is acknowledged present"
                )),
                Presence::Maybe => {
                    self.pes.remove(&name);
                }
            },
            (None, Ok(info)) => v.push(format!(
                "GetPe({ident:?}) returned ghost pe '{}' (id {})",
                info.name, info.id
            )),
            (None, Err(_)) => {}
        }
        v
    }

    /// Present PE names in deterministic order (workload targeting).
    pub fn present_pe_names(&self) -> Vec<String> {
        self.pes
            .iter()
            .filter(|(_, r)| r.presence == Presence::Present)
            .map(|(n, _)| n.clone())
            .collect()
    }

    pub fn present_wf_names(&self) -> Vec<String> {
        self.wfs
            .iter()
            .filter(|(_, r)| r.presence == Presence::Present)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Is this workflow name acknowledged-present?
    pub fn wf_present(&self, name: &str) -> bool {
        self.wfs
            .get(name)
            .map(|r| r.presence == Presence::Present)
            .unwrap_or(false)
    }

    /// Known id of a present PE, if any.
    pub fn pe_id(&self, name: &str) -> Option<u64> {
        self.pes.get(name).and_then(|r| r.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netfault::{CallOutcome, CallRecord};

    fn pe_sub(name: &str, code: &str) -> PeSubmission {
        PeSubmission {
            name: name.into(),
            code: code.into(),
            description: Some(format!("{name} desc")),
        }
    }

    fn reg_pe_record(name: &str, code: &str, id: u64) -> CallRecord {
        CallRecord {
            seq: 0,
            fault: None,
            req: Request::RegisterPe {
                token: 1,
                pe: pe_sub(name, code),
            },
            outcome: CallOutcome::Value(Response::Registered {
                pe_ids: vec![(name.to_string(), id)],
                workflow_id: None,
            }),
        }
    }

    fn info(name: &str, code: &str, id: u64) -> PeInfo {
        PeInfo {
            id,
            name: name.into(),
            description: format!("{name} desc"),
            code: code.into(),
        }
    }

    #[test]
    fn acknowledged_pe_must_appear_in_reads() {
        let mut m = SimModel::new();
        assert!(m.apply(&reg_pe_record("A", "code-a", 7)).is_empty());
        // Server shows it: fine.
        assert!(m.check_registry(&[info("A", "code-a", 7)], &[]).is_empty());
        // Server lost it: violation.
        let v = m.check_registry(&[], &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("lost pe 'A'"), "{v:?}");
    }

    #[test]
    fn ghost_rows_are_violations() {
        let mut m = SimModel::new();
        let v = m.check_registry(&[info("Ghost", "code", 3)], &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("ghost pe 'Ghost'"), "{v:?}");
    }

    #[test]
    fn rejected_workflow_members_are_maybe_and_resolve_both_ways() {
        let mut m = SimModel::new();
        let rec = CallRecord {
            seq: 0,
            fault: None,
            req: Request::RegisterWorkflow {
                token: 1,
                name: "wf".into(),
                code: String::new(),
                description: None,
                pes: vec![pe_sub("M1", "c1"), pe_sub("M2", "c2")],
            },
            outcome: CallOutcome::Value(Response::Error("wal append: injected ENOSPC".into())),
        };
        assert!(m.apply(&rec).is_empty());
        assert_eq!(m.pes["M1"].presence, Presence::Maybe);
        // Server committed M1 before the failure, not M2: both resolve.
        assert!(m.check_registry(&[info("M1", "c1", 1)], &[]).is_empty());
        assert_eq!(m.pes["M1"].presence, Presence::Present);
        assert!(!m.pes.contains_key("M2"));
        // Once resolved Present, losing it later is a violation.
        let v = m.check_registry(&[], &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("lost pe 'M1'"), "{v:?}");
    }

    #[test]
    fn duplicate_reuse_keeps_first_code() {
        let mut m = SimModel::new();
        m.apply(&reg_pe_record("A", "first-code", 7));
        // Re-register with different code: server reuses id, keeps code.
        m.apply(&reg_pe_record("A", "second-code", 7));
        assert_eq!(m.pes["A"].code.as_deref(), Some("first-code"));
        // Server agreeing with first-code passes; second-code would fail.
        assert!(m.check_registry(&[info("A", "first-code", 7)], &[]).is_empty());
        let v = m.check_registry(&[info("A", "second-code", 7)], &[]);
        assert!(v.iter().any(|x| x.contains("code mismatch")), "{v:?}");
    }

    #[test]
    fn id_change_is_a_violation() {
        let mut m = SimModel::new();
        m.apply(&reg_pe_record("A", "c", 7));
        let v = m.apply(&reg_pe_record("A", "c", 9));
        assert!(v.iter().any(|x| x.contains("changed id")), "{v:?}");
    }

    #[test]
    fn remove_all_clears_everything() {
        let mut m = SimModel::new();
        m.apply(&reg_pe_record("A", "c", 1));
        let rec = CallRecord {
            seq: 1,
            fault: None,
            req: Request::RemoveAll { token: 1 },
            outcome: CallOutcome::Value(Response::Ok),
        };
        m.apply(&rec);
        assert!(m.pes.is_empty() && m.wfs.is_empty());
        assert!(m.check_registry(&[], &[]).is_empty());
    }

    #[test]
    fn batch_failed_item_commits_exactly_the_listed_members() {
        let mut m = SimModel::new();
        let rec = CallRecord {
            seq: 0,
            fault: None,
            req: Request::RegisterBatch {
                token: 1,
                items: vec![BatchItemWire::Workflow {
                    name: "wf".into(),
                    code: String::new(),
                    description: None,
                    pes: vec![pe_sub("B1", "c1"), pe_sub("B2", "c2")],
                }],
            },
            outcome: CallOutcome::Value(Response::BatchRegistered {
                outcomes: vec![BatchOutcomeWire::Failed {
                    pe_ids: vec![("B1".into(), 4)],
                    error: "duplicate name".into(),
                }],
            }),
        };
        assert!(m.apply(&rec).is_empty());
        assert_eq!(m.pes["B1"].presence, Presence::Present);
        assert_eq!(m.pes["B1"].id, Some(4));
        assert!(!m.pes.contains_key("B2"));
        assert!(!m.wfs.contains_key("wf"));
    }
}
