//! Seeded network-fault [`Connection`] wrapper — the transport fault
//! plane of the simulation.
//!
//! [`FaultyConn`] sits between the client and any inner [`Connection`]
//! (in practice the in-process `Transport`) and injects faults on either
//! side of a frame exchange, driven by a deterministic [`SimRng`]:
//!
//! * [`NetFault::DisconnectBeforeSend`] — the connection dies before the
//!   request leaves: the server never sees it; the client gets
//!   [`ConnectionError::Unavailable`] (always safe to retry).
//! * [`NetFault::DropRequest`] — the request is lost in flight: the
//!   server never sees it; the client gets [`ConnectionError::TimedOut`].
//! * [`NetFault::DuplicateRequest`] — at-least-once delivery: the server
//!   executes the request twice, the first reply is discarded, the
//!   second is returned. Exercises server-side idempotency (duplicate
//!   registration reuse, upload dedup).
//! * [`NetFault::DropReply`] — the server executed the request but the
//!   reply is lost: the client gets [`ConnectionError::TimedOut`] even
//!   though the effect happened. The classic ambiguous-ack case.
//! * [`NetFault::DisconnectAfterReply`] — mid-reply connection reset:
//!   executed server-side, surfaced as [`ConnectionError::Protocol`]
//!   (never retried by the client).
//! * [`NetFault::Delay`] — frame delay only; with the virtual clock this
//!   perturbs nothing but the schedule, and the call succeeds.
//!
//! The wrapper is **omniscient**: every attempt it makes against the
//! inner connection is journalled as a [`CallRecord`] with the request
//! and the *true* server-side outcome — including outcomes the client
//! never saw because the reply was dropped. The harness's reference
//! model replays this journal, which is what lets the oracle demand
//! exact agreement even under ambiguous acks.
//!
//! Faults can come from a seeded percentage (the harness's chaos mode)
//! or from an explicit script (unit tests pin one fault per call).

use crate::rng::SimRng;
use laminar_server::protocol::{Reply, Request, Response, WireFrame};
use laminar_server::{ConnOptions, Connection, ConnectionError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One injected transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Frame delay only; the call still succeeds.
    Delay,
    /// Request lost in flight: not executed, client times out.
    DropRequest,
    /// Connection refused before send: not executed, client sees
    /// `Unavailable`.
    DisconnectBeforeSend,
    /// At-least-once delivery: executed twice, first reply discarded.
    DuplicateRequest,
    /// Reply lost: executed, client times out.
    DropReply,
    /// Connection reset mid-reply: executed, client sees `Protocol`.
    DisconnectAfterReply,
}

impl NetFault {
    pub const ALL: [NetFault; 6] = [
        NetFault::Delay,
        NetFault::DropRequest,
        NetFault::DisconnectBeforeSend,
        NetFault::DuplicateRequest,
        NetFault::DropReply,
        NetFault::DisconnectAfterReply,
    ];

    pub fn name(self) -> &'static str {
        match self {
            NetFault::Delay => "delay",
            NetFault::DropRequest => "drop-request",
            NetFault::DisconnectBeforeSend => "disconnect-before-send",
            NetFault::DuplicateRequest => "duplicate-request",
            NetFault::DropReply => "drop-reply",
            NetFault::DisconnectAfterReply => "disconnect-after-reply",
        }
    }
}

/// True server-side outcome of one attempt against the inner connection.
#[derive(Debug, Clone)]
pub enum CallOutcome {
    /// The request never reached the server (dropped or disconnected
    /// before send). Guaranteed no server-side effect.
    NotDelivered,
    /// The server returned a synchronous value (which the client may or
    /// may not have seen, depending on the fault).
    Value(Response),
    /// The server opened a stream and it was handed to the caller
    /// undrained (fault-free streamed call).
    Stream,
    /// The server opened a stream but the reply was lost; the wrapper
    /// drained it to completion so server-side effects are settled.
    /// `ok` is the terminal frame's verdict.
    StreamDrained { ok: bool },
    /// The inner connection itself rejected the call (busy, degraded,
    /// unsupported version). No registry mutation happened.
    Rejected(ConnectionError),
}

/// Journal entry: one attempt the wrapper made (or deliberately did not
/// make) against the inner connection, in order.
#[derive(Debug, Clone)]
pub struct CallRecord {
    /// Monotone per-connection attempt number.
    pub seq: u64,
    /// Fault applied to this attempt, if any.
    pub fault: Option<NetFault>,
    /// The request as the server saw (or would have seen) it.
    pub req: Request,
    /// What actually happened server-side.
    pub outcome: CallOutcome,
}

/// Shared fault-plan + journal state, handed to both the wrapper and the
/// harness.
#[derive(Debug)]
pub struct NetState {
    /// Percent chance (0–100) that a call draws a fault.
    percent: AtomicU32,
    rng: Mutex<SimRng>,
    /// Scripted faults consumed before any random draw (front first).
    script: Mutex<VecDeque<Option<NetFault>>>,
    journal: Mutex<Vec<CallRecord>>,
    seq: AtomicU64,
}

impl NetState {
    /// Seeded random plan, initially quiescent (0% faults).
    pub fn new(seed: u64) -> Arc<NetState> {
        Arc::new(NetState {
            percent: AtomicU32::new(0),
            rng: Mutex::new(SimRng::new(seed)),
            script: Mutex::new(VecDeque::new()),
            journal: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
        })
    }

    /// Set the random fault probability (0 disables the random plane;
    /// scripted faults still fire).
    pub fn set_percent(&self, percent: u32) {
        self.percent.store(percent.min(100), Ordering::SeqCst);
    }

    pub fn percent(&self) -> u32 {
        self.percent.load(Ordering::SeqCst)
    }

    /// Queue an explicit fault decision for the next call(s). `None`
    /// scripts a clean call. Scripted entries take priority over the
    /// random plan.
    pub fn push_script(&self, fault: Option<NetFault>) {
        self.script.lock().unwrap().push_back(fault);
    }

    /// Take everything journalled since the last drain.
    pub fn drain_journal(&self) -> Vec<CallRecord> {
        std::mem::take(&mut *self.journal.lock().unwrap())
    }

    fn decide(&self, req: &Request) -> Option<NetFault> {
        let scripted = self.script.lock().unwrap().pop_front();
        let fault = match scripted {
            Some(f) => f,
            None => {
                let percent = self.percent.load(Ordering::SeqCst);
                let mut rng = self.rng.lock().unwrap();
                if percent > 0 && rng.chance(percent) {
                    Some(*rng.pick(&NetFault::ALL))
                } else {
                    None
                }
            }
        };
        // Replaying a run duplicates its execution-history and container
        // side effects in ways no real at-least-once transport batches
        // into one reply stream; downgrade to a harmless delay.
        match (fault, req) {
            (
                Some(NetFault::DuplicateRequest),
                Request::Run { .. } | Request::RunWithInlineResources { .. },
            ) => Some(NetFault::Delay),
            _ => fault,
        }
    }

    fn record(&self, fault: Option<NetFault>, req: Request, outcome: CallOutcome) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.journal.lock().unwrap().push(CallRecord {
            seq,
            fault,
            req,
            outcome,
        });
    }
}

/// Drain a frame stream to its terminal frame; returns the `End` verdict
/// (`false` if the stream errored out or the channel closed early).
fn drain_stream(rx: &crossbeam_channel::Receiver<WireFrame>) -> bool {
    for frame in rx.iter() {
        match frame {
            WireFrame::End { ok, .. } => return ok,
            WireFrame::Value(Response::Error(_)) | WireFrame::Value(Response::TimedOut { .. }) => {
                return false
            }
            _ => {}
        }
    }
    false
}

/// The fault-injecting [`Connection`] wrapper. See the module docs for
/// fault semantics.
pub struct FaultyConn<C: Connection> {
    inner: C,
    state: Arc<NetState>,
}

impl<C: Connection> FaultyConn<C> {
    pub fn new(inner: C, state: Arc<NetState>) -> FaultyConn<C> {
        FaultyConn { inner, state }
    }

    /// Execute against the inner connection and journal the true outcome.
    /// Returns the raw result for the caller to shape per the fault.
    fn attempt(&self, fault: Option<NetFault>, req: &Request) -> Result<Reply, ConnectionError> {
        match self.inner.call(req.clone()) {
            Ok(Reply::Value(v)) => {
                self.state
                    .record(fault, req.clone(), CallOutcome::Value(v.clone()));
                Ok(Reply::Value(v))
            }
            Ok(Reply::Stream(rx)) => {
                // Journalled lazily by the caller: a delivered stream is
                // `Stream`, a lost one is drained to `StreamDrained`.
                Ok(Reply::Stream(rx))
            }
            Err(e) => {
                self.state
                    .record(fault, req.clone(), CallOutcome::Rejected(e.clone()));
                Err(e)
            }
        }
    }

    /// Execute, then lose the reply: streams are drained to completion
    /// first so server-side effects are fully settled before the client
    /// sees the (lossy) error.
    fn attempt_and_lose(&self, fault: Option<NetFault>, req: &Request) {
        match self.inner.call(req.clone()) {
            Ok(Reply::Value(v)) => {
                self.state
                    .record(fault, req.clone(), CallOutcome::Value(v.clone()));
            }
            Ok(Reply::Stream(rx)) => {
                let ok = drain_stream(&rx);
                self.state
                    .record(fault, req.clone(), CallOutcome::StreamDrained { ok });
            }
            Err(e) => {
                self.state
                    .record(fault, req.clone(), CallOutcome::Rejected(e));
            }
        }
    }
}

impl<C: Connection> Connection for FaultyConn<C> {
    fn call(&self, req: Request) -> Result<Reply, ConnectionError> {
        let fault = self.state.decide(&req);
        match fault {
            None | Some(NetFault::Delay) => match self.attempt(fault, &req)? {
                Reply::Value(v) => Ok(Reply::Value(v)),
                Reply::Stream(rx) => {
                    self.state.record(fault, req, CallOutcome::Stream);
                    Ok(Reply::Stream(rx))
                }
            },
            Some(NetFault::DisconnectBeforeSend) => {
                let seq = self.state.seq.load(Ordering::SeqCst);
                self.state.record(fault, req, CallOutcome::NotDelivered);
                Err(ConnectionError::Unavailable(format!(
                    "sim: connection refused before send (attempt {seq})"
                )))
            }
            Some(NetFault::DropRequest) => {
                let seq = self.state.seq.load(Ordering::SeqCst);
                self.state.record(fault, req, CallOutcome::NotDelivered);
                Err(ConnectionError::TimedOut { request_id: seq })
            }
            Some(NetFault::DuplicateRequest) => {
                // At-least-once: the server executes twice; the client
                // only ever sees the second reply.
                self.attempt_and_lose(fault, &req);
                match self.attempt(fault, &req)? {
                    Reply::Value(v) => Ok(Reply::Value(v)),
                    Reply::Stream(rx) => {
                        self.state.record(fault, req, CallOutcome::Stream);
                        Ok(Reply::Stream(rx))
                    }
                }
            }
            Some(NetFault::DropReply) => {
                let seq = self.state.seq.load(Ordering::SeqCst);
                self.attempt_and_lose(fault, &req);
                Err(ConnectionError::TimedOut { request_id: seq })
            }
            Some(NetFault::DisconnectAfterReply) => {
                self.attempt_and_lose(fault, &req);
                Err(ConnectionError::Protocol(
                    "sim: connection reset mid-reply".to_string(),
                ))
            }
        }
    }

    fn options(&self) -> ConnOptions {
        self.inner.options()
    }

    fn set_options(&mut self, opts: ConnOptions) {
        self.inner.set_options(opts);
    }

    fn endpoint(&self) -> String {
        format!("sim-faulty({})", self.inner.endpoint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_faults_fire_in_order_then_fall_back_to_random() {
        let state = NetState::new(1);
        state.push_script(Some(NetFault::DropRequest));
        state.push_script(None);
        let req = Request::Metrics {};
        assert_eq!(state.decide(&req), Some(NetFault::DropRequest));
        assert_eq!(state.decide(&req), None);
        // Script exhausted, percent 0 → clean.
        assert_eq!(state.decide(&req), None);
        state.set_percent(100);
        assert!(state.decide(&req).is_some());
    }

    #[test]
    fn duplicate_is_downgraded_for_runs() {
        let state = NetState::new(2);
        state.push_script(Some(NetFault::DuplicateRequest));
        let run = Request::Run {
            token: 1,
            ident: laminar_server::protocol::Ident::Name("wf".into()),
            input: laminar_server::protocol::RunInputWire::Iterations(1),
            mode: laminar_server::protocol::RunMode::Sequential,
            streaming: false,
            verbose: false,
            resources: vec![],
            fault: laminar_server::protocol::FaultPolicyWire::default(),
            task_timeout_ms: None,
        };
        assert_eq!(state.decide(&run), Some(NetFault::Delay));
        state.push_script(Some(NetFault::DuplicateRequest));
        assert_eq!(
            state.decide(&Request::Metrics {}),
            Some(NetFault::DuplicateRequest)
        );
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let draw = |seed: u64| -> Vec<Option<NetFault>> {
            let state = NetState::new(seed);
            state.set_percent(40);
            (0..50).map(|_| state.decide(&Request::Metrics {})).collect()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
