//! CLI entry point for the simulation harness.
//!
//! ```text
//! laminar-sim [--seed N] [--episodes N] [--ops N] [--mutate lose-wal] [--quiet]
//! ```
//!
//! Prints the deterministic event trace, then a one-line verdict:
//!
//! ```text
//! SIM_SEED=1337 episodes=3 ops=120 verdict=OK digest=4f1e9a2b77c01d58
//! ```
//!
//! The digest is an FNV-1a hash of the trace; two runs with the same
//! seed and options must print identical traces and digests (the
//! `check.sh` sim gate runs every seed twice and diffs the output).
//! Exit code 1 on any oracle violation.

use laminar_sim::{run_sim, Mutation, SimOptions};

fn usage() -> ! {
    eprintln!(
        "usage: laminar-sim [--seed N] [--episodes N] [--ops N] [--mutate lose-wal] [--quiet]"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = SimOptions::default();
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => usage(),
            },
            "--episodes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.episodes = v,
                None => usage(),
            },
            "--ops" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.ops_per_episode = v,
                None => usage(),
            },
            "--mutate" => match args.next().as_deref() {
                Some("lose-wal") => opts.mutate = Some(Mutation::LoseWal),
                _ => usage(),
            },
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }

    let report = run_sim(&opts);
    if !quiet {
        for line in &report.trace {
            println!("{line}");
        }
    }
    for v in &report.violations {
        println!("VIOLATION: {v}");
    }
    println!(
        "SIM_SEED={} episodes={} ops={} verdict={} digest={:016x}",
        opts.seed,
        report.episodes_run,
        report.ops_run,
        if report.ok() { "OK" } else { "FAIL" },
        report.digest
    );
    if !report.ok() {
        std::process::exit(1);
    }
}
